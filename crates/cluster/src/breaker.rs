//! Per-node circuit breakers and the coordinator's retry token budget
//! (DESIGN.md §Overload model).
//!
//! A [`CircuitBreaker`] guards the path to one backend node. It is a
//! three-state machine driven purely by request outcomes and an injected
//! clock, so tests replay every transition deterministically with a
//! [`ManualClock`](ms_service::ManualClock):
//!
//! ```text
//! Closed ──(failure_threshold consecutive failures)──▶ Open
//! Open ──(open_micros elapsed)──▶ HalfOpen (one probe at a time)
//! HalfOpen ──(half_open_successes probes succeed)──▶ Closed
//! HalfOpen ──(any probe fails)──▶ Open (timer restarts)
//! ```
//!
//! While open, [`CircuitBreaker::allow`] fails fast — the coordinator
//! skips the node like a dead one instead of burning a timeout on every
//! scatter leg. Half-open admits a single probe; the ping loop or the
//! next request plays that role.
//!
//! The [`RetryBudget`] is the classic token bucket that bounds *extra*
//! attempts to a fraction of real traffic: every first attempt deposits
//! `deposit_millitokens` (capped at `capacity` whole tokens), every
//! retry withdraws a whole token, and when the bucket is dry the retry
//! is denied — under a persistent outage the coordinator degrades to
//! one attempt per request instead of amplifying the overload.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use ms_service::CubeClock;

/// Where a [`CircuitBreaker`] currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: every request flows.
    Closed,
    /// Tripped: requests fail fast until the open window elapses.
    Open,
    /// Probing: one request at a time is let through to test the node.
    HalfOpen,
}

/// Knobs for [`CircuitBreaker`].
#[derive(Debug, Clone)]
pub struct BreakerConfig {
    /// Consecutive failures (while closed) that trip the breaker.
    pub failure_threshold: u32,
    /// How long the breaker stays open before letting a probe through.
    pub open_micros: u64,
    /// Consecutive half-open successes required to close again.
    pub half_open_successes: u32,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            open_micros: 500_000,
            half_open_successes: 1,
        }
    }
}

#[derive(Debug)]
struct BreakerInner {
    state: BreakerState,
    consecutive_failures: u32,
    /// Clock reading when the breaker last opened.
    opened_at: u64,
    half_open_successes: u32,
    /// A half-open probe is in flight; further requests fail fast until
    /// its outcome is recorded.
    probe_inflight: bool,
}

/// Circuit breaker for the path to one backend node. Clone-free and
/// thread-safe; outcomes arrive from whichever connection thread ran
/// the request.
#[derive(Debug)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    clock: Arc<dyn CubeClock>,
    inner: Mutex<BreakerInner>,
    trips: AtomicU64,
}

impl CircuitBreaker {
    /// A closed breaker reading time from `clock`.
    pub fn new(cfg: BreakerConfig, clock: Arc<dyn CubeClock>) -> CircuitBreaker {
        CircuitBreaker {
            cfg,
            clock,
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                opened_at: 0,
                half_open_successes: 0,
                probe_inflight: false,
            }),
            trips: AtomicU64::new(0),
        }
    }

    /// May a request be sent now? Open breakers transition to half-open
    /// once the open window has elapsed; half-open admits exactly one
    /// probe at a time.
    pub fn allow(&self) -> bool {
        let mut inner = lock(&self.inner);
        match inner.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                if self.clock.now_micros().saturating_sub(inner.opened_at) >= self.cfg.open_micros {
                    inner.state = BreakerState::HalfOpen;
                    inner.half_open_successes = 0;
                    inner.probe_inflight = true;
                    true
                } else {
                    false
                }
            }
            BreakerState::HalfOpen => {
                if inner.probe_inflight {
                    false
                } else {
                    inner.probe_inflight = true;
                    true
                }
            }
        }
    }

    /// Record the outcome of a request that [`CircuitBreaker::allow`]ed.
    pub fn record(&self, ok: bool) {
        let mut inner = lock(&self.inner);
        match inner.state {
            BreakerState::Closed => {
                if ok {
                    inner.consecutive_failures = 0;
                } else {
                    inner.consecutive_failures += 1;
                    if inner.consecutive_failures >= self.cfg.failure_threshold {
                        self.trip(&mut inner);
                    }
                }
            }
            BreakerState::HalfOpen => {
                inner.probe_inflight = false;
                if ok {
                    inner.half_open_successes += 1;
                    if inner.half_open_successes >= self.cfg.half_open_successes {
                        inner.state = BreakerState::Closed;
                        inner.consecutive_failures = 0;
                    }
                } else {
                    // The node is still sick: reopen and restart the
                    // window from *now*.
                    self.trip(&mut inner);
                }
            }
            // Outcomes of requests that were in flight when the breaker
            // tripped: the trip already encodes the bad news.
            BreakerState::Open => {}
        }
    }

    fn trip(&self, inner: &mut BreakerInner) {
        inner.state = BreakerState::Open;
        inner.opened_at = self.clock.now_micros();
        inner.consecutive_failures = 0;
        inner.probe_inflight = false;
        self.trips.fetch_add(1, Ordering::Relaxed);
    }

    /// Operator-initiated reset: back to closed with a clean failure
    /// streak. Used by an explicit rejoin, where a human (or the
    /// membership layer) has asserted the node recovered — the automatic
    /// path stays the half-open probe.
    pub fn reset(&self) {
        let mut inner = lock(&self.inner);
        inner.state = BreakerState::Closed;
        inner.consecutive_failures = 0;
        inner.half_open_successes = 0;
        inner.probe_inflight = false;
    }

    /// Current state (no transitions are taken by peeking).
    pub fn state(&self) -> BreakerState {
        lock(&self.inner).state
    }

    /// How many times this breaker has tripped open.
    pub fn trips(&self) -> u64 {
        self.trips.load(Ordering::Relaxed)
    }

    /// Micros until an open breaker lets a probe through (0 when not
    /// open or already due) — the retry hint on fail-fast responses.
    pub fn retry_after_micros(&self) -> u64 {
        let inner = lock(&self.inner);
        match inner.state {
            BreakerState::Open => self
                .cfg
                .open_micros
                .saturating_sub(self.clock.now_micros().saturating_sub(inner.opened_at)),
            _ => 0,
        }
    }
}

/// Token bucket bounding retries to a fraction of real traffic. All
/// arithmetic is integer millitokens, so accounting is exact and
/// deterministic.
#[derive(Debug)]
pub struct RetryBudget {
    millitokens: Mutex<u64>,
    cap_milli: u64,
    deposit_milli: u64,
    denied: AtomicU64,
    withdrawn: AtomicU64,
}

impl RetryBudget {
    /// A budget holding at most `capacity` whole tokens (starts full),
    /// depositing `deposit_millitokens` per first attempt. E.g.
    /// `new(10, 100)` allows roughly one retry per ten requests in
    /// steady state, with bursts of up to ten.
    pub fn new(capacity: u64, deposit_millitokens: u64) -> RetryBudget {
        RetryBudget {
            millitokens: Mutex::new(capacity * 1_000),
            cap_milli: capacity * 1_000,
            deposit_milli: deposit_millitokens,
            denied: AtomicU64::new(0),
            withdrawn: AtomicU64::new(0),
        }
    }

    /// Note one first attempt: deposits toward future retries.
    pub fn note_request(&self) {
        let mut tokens = lock(&self.millitokens);
        *tokens = (*tokens + self.deposit_milli).min(self.cap_milli);
    }

    /// Withdraw one whole token for a retry. `false` means the budget is
    /// dry and the retry must not happen.
    pub fn try_withdraw(&self) -> bool {
        let mut tokens = lock(&self.millitokens);
        if *tokens >= 1_000 {
            *tokens -= 1_000;
            self.withdrawn.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            self.denied.fetch_add(1, Ordering::Relaxed);
            false
        }
    }

    /// Whole tokens currently available.
    pub fn tokens(&self) -> u64 {
        *lock(&self.millitokens) / 1_000
    }

    /// Retries granted so far.
    pub fn withdrawn(&self) -> u64 {
        self.withdrawn.load(Ordering::Relaxed)
    }

    /// Retries denied because the bucket was dry.
    pub fn denied(&self) -> u64 {
        self.denied.load(Ordering::Relaxed)
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ms_service::ManualClock;

    fn breaker(cfg: BreakerConfig) -> (CircuitBreaker, Arc<ManualClock>) {
        let clock = Arc::new(ManualClock::new(0));
        (CircuitBreaker::new(cfg, clock.clone()), clock)
    }

    #[test]
    fn trips_after_threshold_and_fails_fast_while_open() {
        let (b, clock) = breaker(BreakerConfig {
            failure_threshold: 3,
            open_micros: 1_000,
            half_open_successes: 1,
        });
        for _ in 0..2 {
            assert!(b.allow());
            b.record(false);
            assert_eq!(b.state(), BreakerState::Closed);
        }
        assert!(b.allow());
        b.record(false);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 1);
        assert!(!b.allow(), "open breaker fails fast");
        assert_eq!(b.retry_after_micros(), 1_000);
        clock.advance(999);
        assert!(!b.allow());
        assert_eq!(b.retry_after_micros(), 1);
    }

    #[test]
    fn half_open_admits_one_probe_then_closes_on_success() {
        let (b, clock) = breaker(BreakerConfig {
            failure_threshold: 1,
            open_micros: 1_000,
            half_open_successes: 2,
        });
        assert!(b.allow());
        b.record(false);
        clock.advance(1_000);
        assert!(b.allow(), "open window elapsed: probe admitted");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.allow(), "only one probe in flight at a time");
        b.record(true);
        assert_eq!(b.state(), BreakerState::HalfOpen, "needs 2 successes");
        assert!(b.allow());
        b.record(true);
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allow());
    }

    #[test]
    fn half_open_probe_failure_reopens_with_a_fresh_window() {
        let (b, clock) = breaker(BreakerConfig {
            failure_threshold: 1,
            open_micros: 1_000,
            half_open_successes: 1,
        });
        assert!(b.allow());
        b.record(false);
        clock.advance(1_000);
        assert!(b.allow());
        b.record(false);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 2);
        // The window restarts at the probe failure, not the first trip.
        clock.advance(999);
        assert!(!b.allow());
        clock.advance(1);
        assert!(b.allow());
        b.record(true);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn closed_success_resets_the_failure_streak() {
        let (b, _clock) = breaker(BreakerConfig {
            failure_threshold: 2,
            open_micros: 1_000,
            half_open_successes: 1,
        });
        b.record(false);
        b.record(true);
        b.record(false);
        assert_eq!(b.state(), BreakerState::Closed, "streak was broken");
        b.record(false);
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn retry_budget_token_accounting_is_exact() {
        // Capacity 2 tokens, 100 millitokens per request: one retry per
        // ten requests in steady state.
        let budget = RetryBudget::new(2, 100);
        assert_eq!(budget.tokens(), 2, "starts full");
        assert!(budget.try_withdraw());
        assert!(budget.try_withdraw());
        assert!(!budget.try_withdraw(), "dry after capacity withdrawals");
        assert_eq!(budget.denied(), 1);
        // 9 deposits: 900 millitokens — still shy of a whole token.
        for _ in 0..9 {
            budget.note_request();
        }
        assert!(!budget.try_withdraw());
        budget.note_request();
        assert!(budget.try_withdraw(), "10 deposits buy exactly 1 retry");
        assert_eq!(budget.withdrawn(), 3);
        // Deposits never exceed capacity.
        for _ in 0..1_000 {
            budget.note_request();
        }
        assert_eq!(budget.tokens(), 2);
    }
}

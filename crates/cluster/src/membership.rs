//! Per-node health, driven by request outcomes and periodic pings.
//!
//! The state machine is deliberately small: `Alive --failure-->
//! Suspect --more failures--> Dead --success--> Alive`. A node is
//! *suspect* after `suspect_after` consecutive failures (still routed
//! to, so one dropped packet does not trigger a rebalance) and *dead*
//! after `dead_after`, at which point the router walks past its ring
//! slots. Any success resets the counter and revives the node — rejoin
//! is just the first successful ping after a restart.

use std::sync::atomic::{AtomicU32, AtomicU8, Ordering};

use ms_service::NodeState;

/// Lock-free health tracker for one backend node.
#[derive(Debug)]
pub struct NodeHealth {
    state: AtomicU8,
    consecutive_failures: AtomicU32,
    suspect_after: u32,
    dead_after: u32,
}

impl NodeHealth {
    /// A node starts alive: the coordinator assumes the operator listed
    /// reachable backends and lets the first requests prove otherwise.
    pub fn new(suspect_after: u32, dead_after: u32) -> NodeHealth {
        assert!(
            suspect_after <= dead_after,
            "suspect threshold above dead threshold"
        );
        NodeHealth {
            state: AtomicU8::new(NodeState::Alive as u8),
            consecutive_failures: AtomicU32::new(0),
            suspect_after,
            dead_after,
        }
    }

    /// Current state.
    pub fn state(&self) -> NodeState {
        match self.state.load(Ordering::Acquire) {
            0 => NodeState::Alive,
            1 => NodeState::Suspect,
            _ => NodeState::Dead,
        }
    }

    /// Consecutive failures since the last success.
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive_failures.load(Ordering::Acquire)
    }

    /// Is the node routed around (dead)?
    pub fn is_dead(&self) -> bool {
        matches!(self.state(), NodeState::Dead)
    }

    /// Record a successful request; revives the node from any state.
    /// Returns true when this success flipped a dead node back to alive
    /// (a rejoin, worth an event in the flight recorder).
    pub fn success(&self) -> bool {
        self.consecutive_failures.store(0, Ordering::Release);
        let prev = self.state.swap(NodeState::Alive as u8, Ordering::AcqRel);
        prev == NodeState::Dead as u8
    }

    /// Record a failed request. Returns true when this failure crossed
    /// the death threshold (the moment the ring rebalances).
    pub fn failure(&self) -> bool {
        let failures = self.consecutive_failures.fetch_add(1, Ordering::AcqRel) + 1;
        let next = if failures >= self.dead_after {
            NodeState::Dead
        } else if failures >= self.suspect_after {
            NodeState::Suspect
        } else {
            NodeState::Alive
        };
        let prev = self.state.swap(next as u8, Ordering::AcqRel);
        matches!(next, NodeState::Dead) && prev != NodeState::Dead as u8
    }

    /// Force the node straight to dead (operator action or a connection
    /// refused, which needs no three-strikes grace).
    pub fn mark_dead(&self) -> bool {
        self.consecutive_failures
            .fetch_max(self.dead_after, Ordering::AcqRel);
        let prev = self.state.swap(NodeState::Dead as u8, Ordering::AcqRel);
        prev != NodeState::Dead as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walks_alive_suspect_dead_and_revives() {
        let h = NodeHealth::new(1, 3);
        assert!(matches!(h.state(), NodeState::Alive));
        assert!(!h.failure());
        assert!(matches!(h.state(), NodeState::Suspect));
        assert!(!h.failure());
        assert!(h.failure()); // third failure crosses the death threshold
        assert!(matches!(h.state(), NodeState::Dead));
        assert!(!h.failure()); // already dead: no second death event
        assert!(h.success()); // rejoin
        assert!(matches!(h.state(), NodeState::Alive));
        assert_eq!(h.consecutive_failures(), 0);
    }

    #[test]
    fn mark_dead_is_immediate_and_idempotent() {
        let h = NodeHealth::new(1, 3);
        assert!(h.mark_dead());
        assert!(!h.mark_dead());
        assert!(h.is_dead());
        assert!(h.success());
        assert!(!h.is_dead());
    }
}

//! Runtime-dispatched summary: one enum over the four families the engine
//! can maintain, so shards, the compactor, and the wire protocol handle any
//! configured kind uniformly.

use ms_core::{
    ItemSummary, Json, MergeError, Mergeable, Summary, ToJson, Wire, WireError, WireReader,
};
use ms_frequency::{MgSummary, SpaceSavingSummary};
use ms_quantiles::{HybridQuantile, RankSummary};
use ms_sketches::CountMinSketch;

use crate::config::{ServiceConfig, SummaryKind};

/// Merge lineage of a published summary: how the `ε·n` promise was
/// earned. The paper guarantees the bound under *any* merge tree
/// (PODS'12, Definition 1); the lineage records which tree this summary
/// actually came from — merge operations absorbed, depth of the deepest
/// path, and the total weight `n` the envelope applies to — so the
/// accuracy audit can report "observed error X against an ε·n envelope
/// of Y after M merges at depth D" instead of an unanchored number.
///
/// Lineage lives *beside* the summary (engine snapshots, audit reports),
/// never inside its wire encoding: `ShardSummary` bytes on disk and in
/// the golden corpus stay exactly as they were.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MergeLineage {
    /// Merge operations folded into this summary since birth.
    pub merges: u64,
    /// Depth of the deepest merge path (0 = never merged).
    pub depth: u64,
    /// Total stream weight `n` the summary covers.
    pub weight: u64,
}

impl MergeLineage {
    /// Lineage of an unmerged summary covering `weight` items.
    pub fn leaf(weight: u64) -> MergeLineage {
        MergeLineage {
            merges: 0,
            depth: 0,
            weight,
        }
    }

    /// Account for merging `other`'s summary into this one: one more
    /// merge op, a tree one level deeper than the deeper input, weights
    /// additive — exactly mirroring the summary merge it describes.
    pub fn absorb(&mut self, other: MergeLineage) {
        self.merges = self.merges + other.merges + 1;
        self.depth = self.depth.max(other.depth) + 1;
        self.weight += other.weight;
    }

    /// The live error envelope: `ε · n` at the lineage's current weight.
    pub fn envelope(&self, epsilon: f64) -> f64 {
        epsilon * self.weight as f64
    }
}

/// A summary of one of the engine's four families, over `u64` items.
#[derive(Debug, Clone)]
pub enum ShardSummary {
    /// Misra-Gries heavy hitters.
    Mg(MgSummary<u64>),
    /// SpaceSaving heavy hitters.
    SpaceSaving(SpaceSavingSummary<u64>),
    /// Hybrid quantile summary.
    HybridQuantile(HybridQuantile<u64>),
    /// Count-Min sketch.
    CountMin(CountMinSketch<u64>),
}

impl ShardSummary {
    /// A fresh, empty summary for `shard` under `cfg`.
    ///
    /// Linear sketches share `cfg.seed` across shards (merging requires the
    /// same hash family); the randomized quantile summary gets a distinct
    /// per-shard seed so shard RNG streams are independent.
    pub fn new(cfg: &ServiceConfig, shard: usize) -> Self {
        match cfg.kind {
            SummaryKind::Mg => ShardSummary::Mg(MgSummary::for_epsilon(cfg.epsilon)),
            SummaryKind::SpaceSaving => {
                ShardSummary::SpaceSaving(SpaceSavingSummary::for_epsilon(cfg.epsilon))
            }
            SummaryKind::HybridQuantile => ShardSummary::HybridQuantile(HybridQuantile::new(
                cfg.epsilon,
                cfg.seed ^ (shard as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            )),
            SummaryKind::CountMin => ShardSummary::CountMin(CountMinSketch::for_epsilon_delta(
                cfg.epsilon,
                0.01,
                cfg.seed,
            )),
        }
    }

    /// Which family this summary belongs to.
    pub fn kind(&self) -> SummaryKind {
        match self {
            ShardSummary::Mg(_) => SummaryKind::Mg,
            ShardSummary::SpaceSaving(_) => SummaryKind::SpaceSaving,
            ShardSummary::HybridQuantile(_) => SummaryKind::HybridQuantile,
            ShardSummary::CountMin(_) => SummaryKind::CountMin,
        }
    }

    /// Insert one occurrence of `item`.
    pub fn update(&mut self, item: u64) {
        match self {
            ShardSummary::Mg(s) => s.update(item),
            ShardSummary::SpaceSaving(s) => s.update(item),
            ShardSummary::HybridQuantile(s) => s.insert(item),
            ShardSummary::CountMin(s) => s.update(item),
        }
    }

    /// Insert a batch of items — the worker ingest path.
    ///
    /// Count-Min routes through its hash-then-update batch kernel (see
    /// `ms_sketches::batch`); the counter-map and quantile families keep
    /// the per-item loop because their updates are data-dependent (map
    /// probes, RNG-coupled compactions) and must apply in order to stay
    /// bit-identical with the sequential path.
    pub fn update_batch(&mut self, items: &[u64]) {
        match self {
            ShardSummary::CountMin(s) => s.update_batch(items),
            ShardSummary::Mg(s) => {
                for &item in items {
                    s.update(item);
                }
            }
            ShardSummary::SpaceSaving(s) => {
                for &item in items {
                    s.update(item);
                }
            }
            ShardSummary::HybridQuantile(s) => {
                for &item in items {
                    s.insert(item);
                }
            }
        }
    }

    /// Estimated frequency of `item`. `None` for quantile summaries, which
    /// do not answer point queries.
    pub fn point(&self, item: u64) -> Option<u64> {
        match self {
            ShardSummary::Mg(s) => Some(s.estimate(&item)),
            ShardSummary::SpaceSaving(s) => Some(s.estimate(&item)),
            ShardSummary::HybridQuantile(_) => None,
            ShardSummary::CountMin(s) => Some(s.estimate(&item)),
        }
    }

    /// Items with estimated frequency ≥ φ·n. `None` for families that
    /// cannot enumerate candidates (Count-Min, quantiles).
    pub fn heavy_hitters(&self, phi: f64) -> Option<Vec<(u64, u64)>> {
        match self {
            ShardSummary::Mg(s) => Some(s.heavy_hitters(phi)),
            ShardSummary::SpaceSaving(s) => Some(s.heavy_hitters(phi)),
            ShardSummary::HybridQuantile(_) | ShardSummary::CountMin(_) => None,
        }
    }

    /// Estimated rank of `x` (values strictly below). Quantile summaries
    /// only.
    pub fn rank(&self, x: u64) -> Option<u64> {
        match self {
            ShardSummary::HybridQuantile(s) => Some(s.rank(&x)),
            _ => None,
        }
    }

    /// Estimated φ-quantile. Quantile summaries only; inner `None` means
    /// the summary is empty.
    pub fn quantile(&self, phi: f64) -> Option<Option<u64>> {
        match self {
            ShardSummary::HybridQuantile(s) => Some(s.quantile(phi)),
            _ => None,
        }
    }

    /// In-place merge: fold `other` into `self` without reallocating
    /// `self`'s storage — the compactor's steady-state path. On error
    /// (kind or parameter mismatch) `self` is left untouched.
    pub fn merge_in_place(&mut self, other: ShardSummary) -> ms_core::Result<()> {
        match (self, other) {
            (ShardSummary::Mg(a), ShardSummary::Mg(b)) => a.merge_from(b),
            (ShardSummary::SpaceSaving(a), ShardSummary::SpaceSaving(b)) => a.merge_from(b),
            (ShardSummary::HybridQuantile(a), ShardSummary::HybridQuantile(b)) => a.merge_from(b),
            (ShardSummary::CountMin(a), ShardSummary::CountMin(b)) => a.merge_from(b),
            _ => Err(MergeError::Incompatible(
                "cannot merge summaries of different kinds",
            )),
        }
    }

    /// Fold a backlog of deltas into `self` in one pass where the family
    /// allows it. Count-Min is a linear sketch, so the fused multiway
    /// cell-add (`CountMinSketch::merge_many`) is bit-identical to
    /// folding the deltas in sequentially but traverses the destination
    /// table once; every other family falls back to sequential
    /// `merge_in_place` in the given order. Returns one result per delta,
    /// in order — callers account each fold separately.
    pub fn merge_in_place_many(&mut self, others: Vec<ShardSummary>) -> Vec<ms_core::Result<()>> {
        if let ShardSummary::CountMin(dst) = self {
            let mut sources = Vec::with_capacity(others.len());
            let mut results = Vec::with_capacity(others.len());
            for other in &others {
                match other {
                    ShardSummary::CountMin(cm) => {
                        sources.push(cm);
                        results.push(Ok(()));
                    }
                    _ => results.push(Err(MergeError::Incompatible(
                        "cannot merge summaries of different kinds",
                    ))),
                }
            }
            match dst.merge_many(&sources) {
                Ok(()) => return results,
                Err(_) => {
                    // A shape/seed mismatch in the batch: fall through to
                    // the sequential path so only the offending deltas
                    // fail, exactly as they would have one at a time.
                }
            }
        }
        others
            .into_iter()
            .map(|other| self.merge_in_place(other))
            .collect()
    }
}

impl Summary for ShardSummary {
    fn total_weight(&self) -> u64 {
        match self {
            ShardSummary::Mg(s) => s.total_weight(),
            ShardSummary::SpaceSaving(s) => s.total_weight(),
            ShardSummary::HybridQuantile(s) => s.count(),
            ShardSummary::CountMin(s) => s.total_weight(),
        }
    }

    fn size(&self) -> usize {
        match self {
            ShardSummary::Mg(s) => s.size(),
            ShardSummary::SpaceSaving(s) => s.size(),
            ShardSummary::HybridQuantile(s) => s.size(),
            ShardSummary::CountMin(s) => s.size(),
        }
    }
}

impl Mergeable for ShardSummary {
    fn merge(mut self, other: Self) -> ms_core::Result<Self> {
        self.merge_in_place(other)?;
        Ok(self)
    }
}

impl Wire for ShardSummary {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.kind().encode_into(out);
        match self {
            ShardSummary::Mg(s) => s.encode_into(out),
            ShardSummary::SpaceSaving(s) => s.encode_into(out),
            ShardSummary::HybridQuantile(s) => s.encode_into(out),
            ShardSummary::CountMin(s) => s.encode_into(out),
        }
    }

    fn decode_from(r: &mut WireReader<'_>) -> std::result::Result<Self, WireError> {
        Ok(match SummaryKind::decode_from(r)? {
            SummaryKind::Mg => ShardSummary::Mg(MgSummary::decode_from(r)?),
            SummaryKind::SpaceSaving => {
                ShardSummary::SpaceSaving(SpaceSavingSummary::decode_from(r)?)
            }
            SummaryKind::HybridQuantile => {
                ShardSummary::HybridQuantile(HybridQuantile::decode_from(r)?)
            }
            SummaryKind::CountMin => ShardSummary::CountMin(CountMinSketch::decode_from(r)?),
        })
    }
}

impl ToJson for ShardSummary {
    fn to_json(&self) -> Json {
        let inner = match self {
            ShardSummary::Mg(s) => s.to_json(),
            ShardSummary::SpaceSaving(s) => s.to_json(),
            ShardSummary::HybridQuantile(s) => s.to_json(),
            ShardSummary::CountMin(s) => s.to_json(),
        };
        Json::obj([
            ("kind", Json::Str(self.kind().label().to_string())),
            ("summary", inner),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(kind: SummaryKind) -> ShardSummary {
        let cfg = ServiceConfig::new(kind, 0.05);
        let mut s = ShardSummary::new(&cfg, 0);
        // Skewed so heavy-hitter summaries retain counters (a uniform
        // stream below n/(k+1) per item may legitimately empty MG).
        for i in 0..500u64 {
            s.update(i % 7);
        }
        s
    }

    #[test]
    fn lineage_mirrors_the_merge_tree() {
        // A left-deep fold of four leaves: 3 merges, depth 3, weights add.
        let mut acc = MergeLineage::leaf(100);
        for _ in 0..3 {
            acc.absorb(MergeLineage::leaf(100));
        }
        assert_eq!(acc.merges, 3);
        assert_eq!(acc.depth, 3);
        assert_eq!(acc.weight, 400);

        // A balanced tree of the same four leaves: same merges and
        // weight (the bound only depends on those), shallower depth.
        let mut left = MergeLineage::leaf(100);
        left.absorb(MergeLineage::leaf(100));
        let mut right = MergeLineage::leaf(100);
        right.absorb(MergeLineage::leaf(100));
        let mut balanced = left;
        balanced.absorb(right);
        assert_eq!(balanced.merges, 3);
        assert_eq!(balanced.depth, 2);
        assert_eq!(balanced.weight, 400);

        assert_eq!(balanced.envelope(0.01), 4.0);
        assert_eq!(MergeLineage::default().envelope(0.5), 0.0);
    }

    #[test]
    fn update_and_weight_for_every_kind() {
        for kind in SummaryKind::all() {
            let s = filled(kind);
            assert_eq!(s.kind(), kind);
            assert_eq!(s.total_weight(), 500);
            assert!(s.size() > 0);
        }
    }

    #[test]
    fn queries_dispatch_by_family() {
        let mg = filled(SummaryKind::Mg);
        assert!(mg.point(0).is_some());
        assert!(mg.heavy_hitters(0.01).is_some());
        assert!(mg.rank(10).is_none());
        assert!(mg.quantile(0.5).is_none());

        let hq = filled(SummaryKind::HybridQuantile);
        assert!(hq.point(0).is_none());
        assert!(hq.heavy_hitters(0.01).is_none());
        assert!(hq.rank(10).is_some());
        assert!(hq.quantile(0.5).unwrap().is_some());

        let cm = filled(SummaryKind::CountMin);
        assert!(cm.point(0).is_some());
        assert!(cm.heavy_hitters(0.01).is_none());
    }

    #[test]
    fn merge_same_kind_adds_weight() {
        for kind in SummaryKind::all() {
            let merged = filled(kind).merge(filled(kind)).unwrap();
            assert_eq!(merged.total_weight(), 1000, "{}", kind.label());
        }
    }

    #[test]
    fn merge_in_place_adds_weight_and_survives_mismatch() {
        for kind in SummaryKind::all() {
            let mut acc = filled(kind);
            acc.merge_in_place(filled(kind)).unwrap();
            assert_eq!(acc.total_weight(), 1000, "{}", kind.label());
        }
        let mut acc = filled(SummaryKind::Mg);
        let err = acc
            .merge_in_place(filled(SummaryKind::CountMin))
            .unwrap_err();
        assert!(matches!(err, MergeError::Incompatible(_)));
        assert_eq!(acc.total_weight(), 500, "self untouched on mismatch");
    }

    #[test]
    fn merge_kind_mismatch_errors() {
        let err = filled(SummaryKind::Mg)
            .merge(filled(SummaryKind::CountMin))
            .unwrap_err();
        assert!(matches!(err, MergeError::Incompatible(_)));
    }

    #[test]
    fn wire_roundtrip_every_kind() {
        for kind in SummaryKind::all() {
            let s = filled(kind);
            let back = ShardSummary::decode(&s.encode()).unwrap();
            assert_eq!(back.kind(), kind);
            assert_eq!(back.total_weight(), s.total_weight());
            assert_eq!(back.size(), s.size(), "{}", kind.label());
            // Losslessness: every query answers identically after a trip
            // through the codec.
            for item in 0..10 {
                assert_eq!(back.point(item), s.point(item), "{}", kind.label());
                assert_eq!(back.rank(item), s.rank(item), "{}", kind.label());
            }
            assert_eq!(
                back.heavy_hitters(0.05).map(|mut h| {
                    h.sort_unstable();
                    h
                }),
                s.heavy_hitters(0.05).map(|mut h| {
                    h.sort_unstable();
                    h
                })
            );
            assert_eq!(back.quantile(0.5), s.quantile(0.5));
        }
    }
}

//! Admission control and load shedding (DESIGN.md §Overload model).
//!
//! The server asks [`Admission::try_admit`] before dispatching every
//! decoded request. Three independent signals can shed it:
//!
//! 1. **In-flight caps** — a global cap across all connections and a
//!    per-connection cap, both counted while the request is dispatching.
//! 2. **Queue pressure** — occupancy of the engine's shard ingest queues
//!    (read from the existing `queue_depth` telemetry gauges) against two
//!    watermarks. Queries shed first at `shed_watermark`; ingest holds on
//!    until `ingest_watermark`, because dropping data is worse than
//!    degrading reads — mergeability means the summary stays valid for
//!    everything admitted either way.
//! 3. **Deadlines** — an expired budget sheds before dispatch (counted
//!    here, checked by the server / engine via [`crate::deadline`]).
//!
//! Control-plane opcodes (ping, flush, metrics, telemetry, cluster-info,
//! trace and accuracy pulls) bypass all three: an overloaded server must
//! stay observable, and those requests add no queue work — flush in
//! particular is how a client *waits out* pressure, so shedding it would
//! deny the one request that relieves the overload. Every decision lands
//! in registry counters so `mergeable metrics` shows the shed/admit split
//! live.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ms_obs::{Counter, Gauge, MetricsRegistry};

/// Priority class of a request opcode under overload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    /// Observability / liveness: never shed.
    Control,
    /// Reads: first to degrade (the client can retry a query cheaply).
    Query,
    /// Mutations (ingest): shed last — data loss is the failure mode the
    /// whole design exists to avoid.
    Ingest,
}

impl OpClass {
    /// Classify a wire opcode (see [`crate::protocol::Request::opcode`]).
    pub fn of(opcode: u8) -> OpClass {
        match opcode {
            // ping, flush, metrics, telemetry, cluster_info, trace_dump,
            // accuracy_report — flush adds no weight and is how a client
            // waits for pressure to drain, so it must never be shed
            0 | 2 | 7 | 9 | 10 | 15 | 16 => OpClass::Control,
            1 => OpClass::Ingest,
            _ => OpClass::Query,
        }
    }
}

/// Knobs for [`Admission`]. The default is fully permissive (no caps, no
/// watermarks) so an unconfigured engine behaves exactly as before.
#[derive(Debug, Clone)]
pub struct OverloadConfig {
    /// Requests dispatching concurrently across all connections
    /// (0 = unlimited).
    pub max_inflight: u64,
    /// Requests dispatching concurrently per connection (0 = unlimited).
    pub max_inflight_per_conn: u64,
    /// Shard-queue occupancy in [0,1] at which *queries* shed
    /// (0.0 disables watermark shedding).
    pub shed_watermark: f64,
    /// Occupancy at which *ingest* sheds too; clamped to at least
    /// `shed_watermark` so priorities cannot invert.
    pub ingest_watermark: f64,
    /// Retry hint stamped on `Overloaded` responses, in microseconds.
    pub retry_after_micros: u64,
}

impl Default for OverloadConfig {
    fn default() -> OverloadConfig {
        OverloadConfig {
            max_inflight: 0,
            max_inflight_per_conn: 0,
            shed_watermark: 0.0,
            ingest_watermark: 0.0,
            retry_after_micros: 50_000,
        }
    }
}

impl OverloadConfig {
    /// Set the global in-flight cap (0 = unlimited).
    pub fn max_inflight(mut self, n: u64) -> OverloadConfig {
        self.max_inflight = n;
        self
    }

    /// Set the per-connection in-flight cap (0 = unlimited).
    pub fn max_inflight_per_conn(mut self, n: u64) -> OverloadConfig {
        self.max_inflight_per_conn = n;
        self
    }

    /// Set the query shed watermark (queue occupancy in [0,1]).
    pub fn shed_watermark(mut self, w: f64) -> OverloadConfig {
        self.shed_watermark = w;
        self
    }

    /// Set the ingest shed watermark (queue occupancy in [0,1]).
    pub fn ingest_watermark(mut self, w: f64) -> OverloadConfig {
        self.ingest_watermark = w;
        self
    }

    /// Set the retry hint carried by `Overloaded` responses.
    pub fn retry_after_micros(mut self, micros: u64) -> OverloadConfig {
        self.retry_after_micros = micros;
        self
    }

    /// Is any overload control active at all?
    pub fn enabled(&self) -> bool {
        self.max_inflight > 0 || self.max_inflight_per_conn > 0 || self.shed_watermark > 0.0
    }
}

/// Why a request was shed (the label its counter carries).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The global or per-connection in-flight cap was full.
    Inflight,
    /// Queue pressure crossed the class's watermark.
    Pressure,
    /// The request's deadline budget was already spent.
    Deadline,
}

/// The admission controller: pressure signal + in-flight accounting +
/// shed/admit counters. One per engine, shared by every connection
/// thread.
pub struct Admission {
    cfg: OverloadConfig,
    /// Requests currently dispatching, across all connections.
    inflight: AtomicU64,
    /// The engine's per-shard queue-depth gauges (the pressure signal).
    /// Empty when telemetry is disabled — pressure then reads 0 and only
    /// the in-flight caps shed.
    queues: Vec<Arc<Gauge>>,
    /// Total queue slots across shards (`shards * queue_depth`).
    queue_slots: u64,
    admitted: Arc<Counter>,
    shed_query: Arc<Counter>,
    shed_ingest: Arc<Counter>,
    shed_inflight: Arc<Counter>,
    shed_deadline: Arc<Counter>,
    inflight_gauge: Arc<Gauge>,
}

impl Admission {
    /// Build a controller reading pressure from `queues` (each gauge one
    /// shard's queue depth, `queue_slots` total capacity) and registering
    /// its counters in `registry`.
    pub fn new(
        cfg: OverloadConfig,
        registry: &MetricsRegistry,
        queues: Vec<Arc<Gauge>>,
        queue_slots: u64,
    ) -> Admission {
        Admission {
            cfg,
            inflight: AtomicU64::new(0),
            queues,
            queue_slots: queue_slots.max(1),
            admitted: registry.counter("admission_admitted_total"),
            shed_query: registry.counter("admission_shed_total{class=\"query\"}"),
            shed_ingest: registry.counter("admission_shed_total{class=\"ingest\"}"),
            shed_inflight: registry.counter("admission_shed_total{class=\"inflight\"}"),
            shed_deadline: registry.counter("admission_shed_total{class=\"deadline\"}"),
            inflight_gauge: registry.gauge("inflight_requests"),
        }
    }

    /// The configuration this controller enforces.
    pub fn config(&self) -> &OverloadConfig {
        &self.cfg
    }

    /// The retry hint for `Overloaded` responses.
    pub fn retry_after_micros(&self) -> u64 {
        self.cfg.retry_after_micros
    }

    /// Current shard-queue occupancy in [0, 1].
    pub fn pressure(&self) -> f64 {
        let depth: i64 = self.queues.iter().map(|g| g.get().max(0)).sum();
        (depth as f64 / self.queue_slots as f64).clamp(0.0, 1.0)
    }

    /// Admit or shed one request. On admission the returned guard holds
    /// the global and per-connection in-flight slots until dropped; on a
    /// shed the reason is returned (and already counted).
    pub fn try_admit(
        self: &Arc<Self>,
        opcode: u8,
        conn_inflight: &Arc<AtomicU64>,
    ) -> Result<AdmitGuard, ShedReason> {
        let class = OpClass::of(opcode);
        if class == OpClass::Control {
            // Control traffic bypasses every signal AND takes no slot:
            // a metrics poller must not hold an overloaded server at cap.
            self.admitted.inc();
            return Ok(AdmitGuard {
                admission: Arc::clone(self),
                conn: Arc::clone(conn_inflight),
                counted: false,
            });
        }
        if self.cfg.max_inflight > 0
            && self.inflight.load(Ordering::Acquire) >= self.cfg.max_inflight
        {
            return Err(self.shed(ShedReason::Inflight, class));
        }
        if self.cfg.max_inflight_per_conn > 0
            && conn_inflight.load(Ordering::Acquire) >= self.cfg.max_inflight_per_conn
        {
            return Err(self.shed(ShedReason::Inflight, class));
        }
        if self.cfg.shed_watermark > 0.0 {
            let pressure = self.pressure();
            let watermark = match class {
                OpClass::Ingest => self.cfg.ingest_watermark.max(self.cfg.shed_watermark),
                // Priorities must not invert even if misconfigured.
                _ => self.cfg.shed_watermark,
            };
            if pressure >= watermark {
                return Err(self.shed(ShedReason::Pressure, class));
            }
        }
        self.admitted.inc();
        self.inflight.fetch_add(1, Ordering::AcqRel);
        self.inflight_gauge.inc();
        conn_inflight.fetch_add(1, Ordering::AcqRel);
        Ok(AdmitGuard {
            admission: Arc::clone(self),
            conn: Arc::clone(conn_inflight),
            counted: true,
        })
    }

    /// Count a request shed because its deadline budget was spent before
    /// dispatch (the server checks [`crate::deadline`] itself).
    pub fn note_deadline_expired(&self) {
        self.shed_deadline.inc();
    }

    fn shed(&self, reason: ShedReason, class: OpClass) -> ShedReason {
        match reason {
            ShedReason::Inflight => self.shed_inflight.inc(),
            ShedReason::Deadline => self.shed_deadline.inc(),
            ShedReason::Pressure => match class {
                OpClass::Ingest => self.shed_ingest.inc(),
                _ => self.shed_query.inc(),
            },
        }
        reason
    }

    /// Total sheds so far, across every reason (tests and CLI tables).
    pub fn sheds(&self) -> u64 {
        self.shed_query.get()
            + self.shed_ingest.get()
            + self.shed_inflight.get()
            + self.shed_deadline.get()
    }

    /// Requests admitted so far.
    pub fn admits(&self) -> u64 {
        self.admitted.get()
    }

    /// Requests dispatching right now.
    pub fn inflight(&self) -> u64 {
        self.inflight.load(Ordering::Acquire)
    }
}

/// RAII in-flight slot: holds one unit of the global and per-connection
/// budgets for the duration of dispatch.
pub struct AdmitGuard {
    admission: Arc<Admission>,
    conn: Arc<AtomicU64>,
    /// Whether this admission took in-flight slots (control ones do not).
    counted: bool,
}

impl std::fmt::Debug for AdmitGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmitGuard").finish_non_exhaustive()
    }
}

impl Drop for AdmitGuard {
    fn drop(&mut self) {
        if self.counted {
            self.admission.inflight.fetch_sub(1, Ordering::AcqRel);
            self.admission.inflight_gauge.dec();
            self.conn.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(
        cfg: OverloadConfig,
        shards: usize,
        depth: u64,
    ) -> (Arc<Admission>, Vec<Arc<Gauge>>) {
        let registry = MetricsRegistry::new();
        let queues: Vec<Arc<Gauge>> = (0..shards)
            .map(|s| registry.gauge(&format!("queue_depth{{shard=\"{s}\"}}")))
            .collect();
        let adm = Arc::new(Admission::new(
            cfg,
            &registry,
            queues.clone(),
            shards as u64 * depth,
        ));
        (adm, queues)
    }

    #[test]
    fn opcode_classes() {
        assert_eq!(OpClass::of(0), OpClass::Control);
        assert_eq!(OpClass::of(1), OpClass::Ingest);
        assert_eq!(OpClass::of(2), OpClass::Control);
        assert_eq!(OpClass::of(6), OpClass::Query);
        assert_eq!(OpClass::of(7), OpClass::Control);
        assert_eq!(OpClass::of(12), OpClass::Query);
        assert_eq!(OpClass::of(16), OpClass::Control);
    }

    #[test]
    fn permissive_default_admits_everything() {
        let (adm, _) = controller(OverloadConfig::default(), 2, 8);
        let conn = Arc::new(AtomicU64::new(0));
        let guards: Vec<_> = (0..64)
            .map(|op| adm.try_admit(op % 17, &conn).expect("admit"))
            .collect();
        // Control-class admissions take no in-flight slot.
        let control = (0..64)
            .filter(|op| OpClass::of(op % 17) == OpClass::Control)
            .count();
        assert_eq!(adm.inflight(), 64 - control as u64);
        assert_eq!(adm.admits(), 64);
        assert_eq!(adm.sheds(), 0);
        drop(guards);
        assert_eq!(adm.inflight(), 0);
        assert_eq!(conn.load(Ordering::Acquire), 0);
    }

    #[test]
    fn global_inflight_cap_sheds_and_recovers() {
        let (adm, _) = controller(OverloadConfig::default().max_inflight(2), 1, 8);
        let conn = Arc::new(AtomicU64::new(0));
        let g1 = adm.try_admit(6, &conn).unwrap();
        let _g2 = adm.try_admit(6, &conn).unwrap();
        assert_eq!(adm.try_admit(6, &conn).unwrap_err(), ShedReason::Inflight);
        assert_eq!(adm.try_admit(1, &conn).unwrap_err(), ShedReason::Inflight);
        // Control traffic bypasses the cap: the server stays observable.
        let _m = adm.try_admit(7, &conn).unwrap();
        drop(g1);
        assert!(adm.try_admit(6, &conn).is_ok());
        assert_eq!(adm.sheds(), 2);
    }

    #[test]
    fn per_conn_cap_is_independent_of_other_connections() {
        let (adm, _) = controller(OverloadConfig::default().max_inflight_per_conn(1), 1, 8);
        let conn_a = Arc::new(AtomicU64::new(0));
        let conn_b = Arc::new(AtomicU64::new(0));
        let _ga = adm.try_admit(6, &conn_a).unwrap();
        assert_eq!(adm.try_admit(6, &conn_a).unwrap_err(), ShedReason::Inflight);
        // A different connection still gets its slot.
        assert!(adm.try_admit(6, &conn_b).is_ok());
    }

    #[test]
    fn queries_shed_before_ingest_as_pressure_rises() {
        let cfg = OverloadConfig::default()
            .shed_watermark(0.5)
            .ingest_watermark(0.9);
        let (adm, queues) = controller(cfg, 2, 10);
        let conn = Arc::new(AtomicU64::new(0));

        // Low pressure: everything admitted.
        queues[0].set(2);
        assert!(adm.try_admit(6, &conn).is_ok());
        assert!(adm.try_admit(1, &conn).is_ok());

        // Above the query watermark (12/20 = 0.6): queries shed, ingest
        // still admitted.
        queues[0].set(6);
        queues[1].set(6);
        assert_eq!(adm.try_admit(6, &conn).unwrap_err(), ShedReason::Pressure);
        assert!(adm.try_admit(1, &conn).is_ok());

        // Above the ingest watermark (19/20 = 0.95): ingest sheds too,
        // control traffic (flush, metrics) never does.
        queues[0].set(10);
        queues[1].set(9);
        assert_eq!(adm.try_admit(1, &conn).unwrap_err(), ShedReason::Pressure);
        assert!(adm.try_admit(2, &conn).is_ok(), "flush is control-plane");
        assert!(adm.try_admit(7, &conn).is_ok());

        assert_eq!(adm.shed_query.get(), 1);
        assert_eq!(adm.shed_ingest.get(), 1);
    }

    #[test]
    fn inverted_watermarks_cannot_shed_ingest_before_queries() {
        // ingest_watermark below shed_watermark is clamped up, so ingest
        // never sheds while queries are still being admitted.
        let cfg = OverloadConfig::default()
            .shed_watermark(0.8)
            .ingest_watermark(0.2);
        let (adm, queues) = controller(cfg, 1, 10);
        let conn = Arc::new(AtomicU64::new(0));
        queues[0].set(5);
        assert!(adm.try_admit(6, &conn).is_ok(), "query below watermark");
        assert!(adm.try_admit(1, &conn).is_ok(), "ingest clamped to 0.8");
    }
}

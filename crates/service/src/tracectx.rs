//! Distributed trace context: deterministic ids carried on the wire and
//! stitched back into one causal tree.
//!
//! A trace is born at whichever process first sees a request without a
//! context (normally the coordinator), as a pure function of that
//! process's telemetry seed and a per-process counter — so a failing
//! cluster run replays with the *same* trace ids. Every scatter leg the
//! coordinator fans out re-wraps the request in a
//! [`TRACED_REQUEST_TAG`](crate::protocol::TRACED_REQUEST_TAG) frame
//! carrying `(trace_id, parent_span)`; each hop records its spans into
//! its local [`FlightRecorder`](ms_obs::FlightRecorder) with the ids as
//! plain `u64` fields. Nothing here needs synchronized clocks:
//! [`stitch`] orders the merged timeline by parent links (causality),
//! using timestamps only to order *siblings* recorded by the same
//! process.

use std::cell::Cell;

use ms_core::rng::splitmix64;
use ms_core::{Wire, WireError, WireReader};

use crate::protocol::TraceDumpReport;

/// Field names under which spans record their trace identity. Kept as
/// constants so the recorder, the coordinator and [`stitch`] cannot
/// drift apart.
pub const FIELD_TRACE: &str = "trace";
/// Span's own id field.
pub const FIELD_SPAN: &str = "span";
/// Span's parent id field (0 = root).
pub const FIELD_PARENT: &str = "parent";

/// The trace identity carried by a [`TRACED_REQUEST_TAG`] frame: which
/// request tree this hop belongs to, and which span caused it.
///
/// [`TRACED_REQUEST_TAG`]: crate::protocol::TRACED_REQUEST_TAG
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Trace id shared by every span in the stitched tree (never 0).
    pub trace_id: u64,
    /// Span id of the caller's span; 0 when this hop is the root.
    pub parent_span: u64,
}

impl Wire for TraceContext {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.trace_id.encode_into(out);
        self.parent_span.encode_into(out);
    }

    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(TraceContext {
            trace_id: u64::decode_from(r)?,
            parent_span: u64::decode_from(r)?,
        })
    }
}

thread_local! {
    /// The context adopted by the connection thread currently handling a
    /// request; engine / coordinator spans read it to tag themselves.
    static CURRENT: Cell<Option<TraceContext>> = const { Cell::new(None) };
}

/// Run `f` with `ctx` installed as the thread's current trace context,
/// restoring the previous one afterwards (spans record across nested
/// dispatch, e.g. a coordinator serving a gather inside a request).
pub fn with_current<T>(ctx: TraceContext, f: impl FnOnce() -> T) -> T {
    let prev = CURRENT.with(|c| c.replace(Some(ctx)));
    let out = f();
    CURRENT.with(|c| c.set(prev));
    out
}

/// The trace context installed on this thread, if any.
pub fn current() -> Option<TraceContext> {
    CURRENT.with(|c| c.get())
}

/// Derive a child span id deterministically from the trace, the parent
/// span and a per-process salt (seed ⊕ counter). Mixing the parent in
/// keeps ids collision-free even when every node was started with the
/// same telemetry seed. Never returns 0 (0 means "no parent").
pub fn derive_span(trace_id: u64, parent_span: u64, salt: u64) -> u64 {
    let mut state = trace_id ^ parent_span.rotate_left(17) ^ salt.rotate_left(31);
    let id = splitmix64(&mut state);
    if id == 0 {
        1
    } else {
        id
    }
}

/// One span in a stitched cross-process timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct StitchedSpan {
    /// Which dump the span came from (CLI uses the node address).
    pub source: String,
    /// The flight-recorder ring (thread) that recorded it.
    pub thread: String,
    /// Span name as recorded.
    pub name: String,
    /// Trace the span belongs to.
    pub trace_id: u64,
    /// The span's own id.
    pub span_id: u64,
    /// Parent span id (0 for roots).
    pub parent_span: u64,
    /// Start in the *recording process's* clock — comparable only to
    /// spans from the same source.
    pub start_micros: u64,
    /// Span duration.
    pub duration_micros: u64,
    /// Depth in the stitched tree (roots at 0).
    pub depth: usize,
    /// Remaining recorded fields (trace identity stripped).
    pub fields: Vec<(String, u64)>,
}

struct RawSpan {
    source: usize,
    thread: String,
    name: String,
    trace: u64,
    span: u64,
    parent: u64,
    start: u64,
    dur: u64,
    fields: Vec<(String, u64)>,
}

/// Merge flight-recorder dumps from many processes into one causally
/// ordered timeline: a DFS-flattened forest where every span appears
/// after its parent, traces in ascending id order, siblings ordered by
/// their recorded start time (same-process siblings share a clock; a
/// cross-process tie is broken by span id for determinism). Events that
/// carry no trace identity (compactor housekeeping, etc.) are skipped.
pub fn stitch(sources: &[(String, TraceDumpReport)]) -> Vec<StitchedSpan> {
    let mut raw: Vec<RawSpan> = Vec::new();
    for (src_idx, (_, report)) in sources.iter().enumerate() {
        for thread in &report.threads {
            for ev in &thread.events {
                let find = |key: &str| ev.fields.iter().find(|(k, _)| k == key).map(|&(_, v)| v);
                let (Some(trace), Some(span)) = (find(FIELD_TRACE), find(FIELD_SPAN)) else {
                    continue;
                };
                if trace == 0 || span == 0 {
                    continue;
                }
                raw.push(RawSpan {
                    source: src_idx,
                    thread: thread.label.clone(),
                    name: ev.name.clone(),
                    trace,
                    span,
                    parent: find(FIELD_PARENT).unwrap_or(0),
                    start: ev.start_micros,
                    dur: ev.duration_micros,
                    fields: ev
                        .fields
                        .iter()
                        .filter(|(k, _)| k != FIELD_TRACE && k != FIELD_SPAN && k != FIELD_PARENT)
                        .cloned()
                        .collect(),
                });
            }
        }
    }

    // Group span indices by trace, then index spans by id within each.
    let mut traces: std::collections::BTreeMap<u64, Vec<usize>> = std::collections::BTreeMap::new();
    for (i, s) in raw.iter().enumerate() {
        traces.entry(s.trace).or_default().push(i);
    }

    let mut out = Vec::with_capacity(raw.len());
    for (_, members) in traces {
        let mut children: std::collections::BTreeMap<u64, Vec<usize>> =
            std::collections::BTreeMap::new();
        let known: std::collections::BTreeSet<u64> = members.iter().map(|&i| raw[i].span).collect();
        let mut roots: Vec<usize> = Vec::new();
        for &i in &members {
            let s = &raw[i];
            // A span whose parent never made it into any dump (evicted
            // ring, node not queried) is promoted to a root rather than
            // silently dropped.
            if s.parent == 0 || !known.contains(&s.parent) || s.parent == s.span {
                roots.push(i);
            } else {
                children.entry(s.parent).or_default().push(i);
            }
        }
        let by_time = |a: &usize, b: &usize| {
            (raw[*a].start, raw[*a].span).cmp(&(raw[*b].start, raw[*b].span))
        };
        roots.sort_by(by_time);
        for list in children.values_mut() {
            list.sort_by(by_time);
        }
        // Iterative DFS; the visited set guards against malformed dumps
        // with duplicated span ids forming cycles.
        let mut visited: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
        let mut stack: Vec<(usize, usize)> = roots.iter().rev().map(|&i| (i, 0)).collect();
        while let Some((i, depth)) = stack.pop() {
            if !visited.insert(i) {
                continue;
            }
            let s = &raw[i];
            out.push(StitchedSpan {
                source: sources[s.source].0.clone(),
                thread: s.thread.clone(),
                name: s.name.clone(),
                trace_id: s.trace,
                span_id: s.span,
                parent_span: s.parent,
                start_micros: s.start,
                duration_micros: s.dur,
                depth,
                fields: s.fields.clone(),
            });
            if let Some(kids) = children.get(&s.span) {
                for &k in kids.iter().rev() {
                    stack.push((k, depth + 1));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{ThreadTrace, TraceEventRecord};

    fn ev(name: &str, start: u64, trace: u64, span: u64, parent: u64) -> TraceEventRecord {
        TraceEventRecord {
            name: name.to_string(),
            start_micros: start,
            duration_micros: 5,
            fields: vec![
                (FIELD_TRACE.to_string(), trace),
                (FIELD_SPAN.to_string(), span),
                (FIELD_PARENT.to_string(), parent),
            ],
        }
    }

    fn report(threads: Vec<ThreadTrace>) -> TraceDumpReport {
        TraceDumpReport {
            seed: 0,
            ring_capacity: 256,
            captured_micros: 0,
            threads,
        }
    }

    #[test]
    fn context_roundtrips_on_the_wire() {
        let ctx = TraceContext {
            trace_id: u64::MAX,
            parent_span: 12345,
        };
        assert_eq!(TraceContext::decode(&ctx.encode()).unwrap(), ctx);
    }

    #[test]
    fn with_current_nests_and_restores() {
        assert_eq!(current(), None);
        let outer = TraceContext {
            trace_id: 1,
            parent_span: 2,
        };
        let inner = TraceContext {
            trace_id: 3,
            parent_span: 4,
        };
        with_current(outer, || {
            assert_eq!(current(), Some(outer));
            with_current(inner, || assert_eq!(current(), Some(inner)));
            assert_eq!(current(), Some(outer));
        });
        assert_eq!(current(), None);
    }

    #[test]
    fn derive_span_is_deterministic_and_parent_sensitive() {
        let a = derive_span(7, 0, 0x5E1F);
        assert_eq!(a, derive_span(7, 0, 0x5E1F), "pure function of inputs");
        assert_ne!(a, 0, "0 is reserved for 'no parent'");
        // Same seed on two nodes, different parent spans: the derived
        // child ids still differ, so equal-seeded clusters don't collide.
        assert_ne!(derive_span(7, 11, 0x5E1F), derive_span(7, 12, 0x5E1F));
        assert_ne!(derive_span(7, 0, 1), derive_span(7, 0, 2));
    }

    #[test]
    fn stitch_orders_children_after_parents_across_processes() {
        // Coordinator recorded the root and two scatter legs; each node
        // recorded its own request span as a child of its leg. Node
        // clocks are wildly different from the coordinator's — stitching
        // must not care.
        let coord = report(vec![ThreadTrace {
            label: "conn".into(),
            evicted: 0,
            events: vec![
                ev("request", 100, 7, 10, 0),
                ev("scatter", 101, 7, 11, 10),
                ev("scatter", 102, 7, 12, 10),
            ],
        }]);
        let node_a = report(vec![ThreadTrace {
            label: "conn".into(),
            evicted: 0,
            events: vec![ev("request", 999_999, 7, 21, 11)],
        }]);
        let node_b = report(vec![ThreadTrace {
            label: "conn".into(),
            evicted: 0,
            events: vec![ev("request", 3, 7, 22, 12)],
        }]);
        let spans = stitch(&[
            ("coord".into(), coord),
            ("a".into(), node_a),
            ("b".into(), node_b),
        ]);
        assert_eq!(spans.len(), 5);
        // Causal order: every span's parent appears strictly earlier.
        for (i, s) in spans.iter().enumerate() {
            if s.parent_span != 0 {
                let parent_pos = spans.iter().position(|p| p.span_id == s.parent_span);
                assert!(
                    parent_pos.expect("parent present") < i,
                    "span {i} before parent"
                );
            }
        }
        assert_eq!(spans[0].span_id, 10);
        assert_eq!(spans[0].depth, 0);
        // Leg 11's subtree (including node a's span 21) fully precedes
        // leg 12's, because leg 11 started first on the coordinator.
        let pos = |id: u64| spans.iter().position(|s| s.span_id == id).unwrap();
        assert!(pos(11) < pos(21), "leg before its node span");
        assert!(pos(21) < pos(12), "DFS keeps subtrees contiguous");
        assert_eq!(spans[pos(21)].depth, 2);
        assert_eq!(spans[pos(21)].source, "a");
    }

    #[test]
    fn stitch_promotes_orphans_and_skips_untraced_events() {
        let dump = report(vec![ThreadTrace {
            label: "worker0".into(),
            evicted: 3,
            events: vec![
                // Housekeeping event with no trace identity: skipped.
                TraceEventRecord {
                    name: "compact".into(),
                    start_micros: 1,
                    duration_micros: 2,
                    fields: vec![("epoch".into(), 9)],
                },
                // Parent span was evicted from the ring: still shown.
                ev("engine", 50, 5, 99, 42),
            ],
        }]);
        let spans = stitch(&[("n".into(), dump)]);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].span_id, 99);
        assert_eq!(spans[0].depth, 0, "orphan promoted to root");
    }

    #[test]
    fn stitch_survives_self_parenting_spans() {
        let dump = report(vec![ThreadTrace {
            label: "conn".into(),
            evicted: 0,
            events: vec![ev("loop", 1, 9, 33, 33)],
        }]);
        let spans = stitch(&[("n".into(), dump)]);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].depth, 0);
    }
}

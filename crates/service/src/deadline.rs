//! Per-request deadline propagation (DESIGN.md §Overload model).
//!
//! Deadlines travel the wire as a *relative* remaining budget in
//! microseconds (the sentinel-0 [`crate::protocol::TRACED_REQUEST_TAG`]
//! layout) — no clock synchronization is assumed anywhere. Each process
//! converts the budget into a local absolute [`Instant`] the moment the
//! frame decodes, installs it in a thread-local for the duration of
//! dispatch (mirroring [`crate::tracectx`]), and re-encodes whatever is
//! *left* when it fans a request out to another hop. The budget can only
//! shrink across hops, so a doomed request dies at the first hop that
//! notices instead of queueing work nobody will wait for.

use std::cell::Cell;
use std::time::{Duration, Instant};

thread_local! {
    /// The absolute deadline of the request this thread is dispatching.
    static CURRENT: Cell<Option<Instant>> = const { Cell::new(None) };
}

/// Run `f` with `deadline` installed as the thread's current request
/// deadline, restoring the previous one after (nesting-safe, like
/// [`crate::tracectx::with_current`]). `None` clears the deadline for
/// the scope.
pub fn with_deadline<T>(deadline: Option<Instant>, f: impl FnOnce() -> T) -> T {
    let prev = CURRENT.with(|c| c.replace(deadline));
    let out = f();
    CURRENT.with(|c| c.set(prev));
    out
}

/// The current thread's request deadline, if one is installed.
pub fn current() -> Option<Instant> {
    CURRENT.with(|c| c.get())
}

/// Remaining budget of the current deadline in microseconds: `None` when
/// no deadline is installed, `Some(0)` when it has expired.
pub fn remaining_micros() -> Option<u64> {
    current().map(|d| d.saturating_duration_since(Instant::now()).as_micros() as u64)
}

/// True when a deadline is installed and already spent. No deadline
/// means no expiry — plain clients keep today's behavior.
pub fn expired() -> bool {
    matches!(remaining_micros(), Some(0))
}

/// Convert a wire budget (remaining micros granted by the caller) into
/// the local absolute deadline it denotes.
pub fn absolute(budget_micros: u64) -> Instant {
    Instant::now() + Duration::from_micros(budget_micros)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_deadline_by_default() {
        assert_eq!(current(), None);
        assert_eq!(remaining_micros(), None);
        assert!(!expired());
    }

    #[test]
    fn installed_deadline_is_scoped_and_restored() {
        let d = absolute(60_000_000);
        with_deadline(Some(d), || {
            assert_eq!(current(), Some(d));
            let left = remaining_micros().unwrap();
            assert!(left > 0 && left <= 60_000_000);
            assert!(!expired());
            // Nested scopes shadow and restore.
            with_deadline(None, || assert_eq!(current(), None));
            assert_eq!(current(), Some(d));
        });
        assert_eq!(current(), None);
    }

    #[test]
    fn spent_budget_reads_as_expired() {
        with_deadline(Some(absolute(0)), || {
            assert_eq!(remaining_micros(), Some(0));
            assert!(expired());
        });
    }
}

//! Request/response protocol: `Wire`-encoded values carried in
//! [`WireFrame`]s over TCP (tag [`REQUEST_TAG`] client→server,
//! [`RESPONSE_TAG`] server→client).
//!
//! Decoding is total: any malformed frame — wrong tag, unknown opcode,
//! truncated or trailing payload — comes back as a typed [`WireError`]
//! that the server converts into a [`Response::Error`] (and counts in
//! `frames_rejected`) instead of killing the connection thread.

use ms_core::{Wire, WireError, WireFrame, WireReader};
use ms_obs::RegistrySnapshot;

use crate::engine::MetricsReport;
use crate::tracectx::TraceContext;

/// Frame tag for client→server messages.
pub const REQUEST_TAG: u8 = 0x10;
/// Frame tag for server→client messages.
pub const RESPONSE_TAG: u8 = 0x11;
/// Frame tag for client→server messages carrying a distributed-trace
/// context: the payload is a [`TraceContext`] (varint trace id + varint
/// parent span id) immediately followed by the [`Request`] encoding.
/// Servers accept both tags ([`decode_traced_request`]); old clients and
/// every golden corpus frame keep their exact bytes.
///
/// A second, deadline-bearing layout rides the same tag. Trace ids are
/// never 0 ([`TraceContext`]), so a leading varint `0` discriminates it:
///
/// ```text
/// legacy:   varint trace_id (≠0) · varint parent_span · Request
/// deadline: 0x00 · varint trace_id (0 = no context) · varint parent_span
///           · varint deadline_micros · Request
/// ```
///
/// `deadline_micros` is the *remaining budget* the client grants the
/// request (relative, so nodes need no synchronized clocks); `0` means
/// the budget is already spent and the server sheds immediately with
/// [`Response::Overloaded`]. Every pre-deadline golden frame decodes
/// byte-identically through the legacy arm.
pub const TRACED_REQUEST_TAG: u8 = 0x12;

/// One client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness check; answered with [`Response::Ok`].
    Ping,
    /// Ingest a batch of items (blocking backpressure on the server side).
    Ingest(Vec<u64>),
    /// Publish a snapshot containing everything ingested so far.
    Flush,
    /// Estimated frequency of an item.
    Point(u64),
    /// Items with estimated frequency ≥ φ·n.
    HeavyHitters(f64),
    /// Estimated rank of a value.
    Rank(u64),
    /// Estimated φ-quantile.
    Quantile(f64),
    /// Engine counters and snapshot gauges.
    Metrics,
    /// The full global summary, binary-encoded.
    Summary,
    /// The full telemetry registry snapshot: latency histograms,
    /// queue-depth gauges, byte counters (see
    /// [`crate::Engine::telemetry_snapshot`]).
    Telemetry,
    /// Cluster membership and hash-ring state. Answered with
    /// [`Response::Cluster`] by a coordinator; a plain engine answers
    /// with [`Response::Error`].
    ClusterInfo,
    /// The summary held by one backend node, by node index. Answered
    /// with [`Response::Summary`] by a coordinator (which fetches it from
    /// the backend); a plain engine answers with [`Response::Error`].
    NodeSummary(u32),
    /// Estimated φ-quantile over the time window `[start, end]` (engine
    /// clock micros, inclusive), merged from the covering segments.
    /// Answered with [`Response::Range`]; requires the segment cube.
    RangeQuantile {
        /// Window start in engine-clock microseconds (inclusive).
        start_micros: u64,
        /// Window end in engine-clock microseconds (inclusive).
        end_micros: u64,
        /// Quantile rank φ in [0, 1].
        phi: f64,
    },
    /// Items with estimated frequency ≥ φ·w over the time window, where
    /// w is the window's covered weight. Answered with
    /// [`Response::Range`]; requires the segment cube.
    RangeHeavyHitters {
        /// Window start in engine-clock microseconds (inclusive).
        start_micros: u64,
        /// Window end in engine-clock microseconds (inclusive).
        end_micros: u64,
        /// Frequency threshold φ in [0, 1].
        phi: f64,
    },
    /// The segment cube's index: every sealed segment plus the open one.
    /// Answered with [`Response::Segments`]; requires the segment cube.
    SegmentInfo,
    /// Pull this process's flight-recorder rings over the wire. Answered
    /// with [`Response::Trace`]; the `mergeable trace` CLI merges dumps
    /// from the coordinator and every node into one stitched timeline.
    TraceDump,
    /// The accuracy self-audit: merge lineage, the live eps·n envelope
    /// and (when the audit plane is enabled) observed-vs-bound error.
    /// Answered with [`Response::Accuracy`]; a coordinator gathers and
    /// merges per-node audits.
    AccuracyReport,
}

impl Request {
    /// True when re-sending the request after a transport failure cannot
    /// change engine state observed by anyone ([`Request::Ingest`] is the
    /// one mutation that would double-count; `Flush` merely re-publishes).
    pub fn is_idempotent(&self) -> bool {
        !matches!(self, Request::Ingest(_))
    }

    /// The wire opcode byte (also the index into
    /// [`crate::telemetry::OPCODE_LABELS`] for per-opcode latency
    /// histograms).
    pub fn opcode(&self) -> u8 {
        match self {
            Request::Ping => 0,
            Request::Ingest(_) => 1,
            Request::Flush => 2,
            Request::Point(_) => 3,
            Request::HeavyHitters(_) => 4,
            Request::Rank(_) => 5,
            Request::Quantile(_) => 6,
            Request::Metrics => 7,
            Request::Summary => 8,
            Request::Telemetry => 9,
            Request::ClusterInfo => 10,
            Request::NodeSummary(_) => 11,
            Request::RangeQuantile { .. } => 12,
            Request::RangeHeavyHitters { .. } => 13,
            Request::SegmentInfo => 14,
            Request::TraceDump => 15,
            Request::AccuracyReport => 16,
        }
    }
}

/// Decode and validate a request frame: the tag must be [`REQUEST_TAG`]
/// and the payload a complete [`Request`] with no trailing bytes.
pub fn decode_request(frame: &WireFrame) -> Result<Request, WireError> {
    if frame.tag != REQUEST_TAG {
        return Err(WireError::BadTag(frame.tag));
    }
    frame.value::<Request>()
}

/// Out-of-band request metadata carried by a [`TRACED_REQUEST_TAG`]
/// envelope: the trace context (if any) and the remaining deadline
/// budget (if any). A plain [`REQUEST_TAG`] frame decodes to the empty
/// envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RequestEnvelope {
    /// Distributed-trace context, when the caller ships one.
    pub ctx: Option<TraceContext>,
    /// Remaining deadline budget in microseconds (relative — decremented
    /// across coordinator→node hops, never compared between clocks).
    /// `Some(0)` means the budget is already spent.
    pub deadline_micros: Option<u64>,
}

/// Decode a request frame that may carry an envelope: a plain
/// [`REQUEST_TAG`] frame yields the empty envelope, a
/// [`TRACED_REQUEST_TAG`] frame yields the context and/or deadline
/// prepended to the request (see the tag's layout docs). Any other tag
/// is rejected, and all forms enforce no-trailing-bytes like
/// [`decode_request`].
pub fn decode_traced_request(frame: &WireFrame) -> Result<(Request, RequestEnvelope), WireError> {
    match frame.tag {
        REQUEST_TAG => Ok((frame.value::<Request>()?, RequestEnvelope::default())),
        TRACED_REQUEST_TAG => {
            let mut r = WireReader::new(&frame.payload);
            let first = u64::decode_from(&mut r)?;
            let envelope = if first != 0 {
                // Legacy layout: the first varint IS the trace id.
                RequestEnvelope {
                    ctx: Some(TraceContext {
                        trace_id: first,
                        parent_span: u64::decode_from(&mut r)?,
                    }),
                    deadline_micros: None,
                }
            } else {
                // Deadline layout: sentinel 0, then trace id (0 = none),
                // parent span, deadline budget.
                let trace_id = u64::decode_from(&mut r)?;
                let parent_span = u64::decode_from(&mut r)?;
                let deadline_micros = u64::decode_from(&mut r)?;
                RequestEnvelope {
                    ctx: (trace_id != 0).then_some(TraceContext {
                        trace_id,
                        parent_span,
                    }),
                    deadline_micros: Some(deadline_micros),
                }
            };
            let req = Request::decode_from(&mut r)?;
            let left = frame.payload.len() - r.pos();
            if left != 0 {
                return Err(WireError::Trailing(left));
            }
            Ok((req, envelope))
        }
        other => Err(WireError::BadTag(other)),
    }
}

/// Build the wire frame for `req` carrying trace context `ctx`
/// (tag [`TRACED_REQUEST_TAG`], legacy layout — no deadline).
pub fn traced_frame(ctx: TraceContext, req: &Request) -> WireFrame {
    let mut payload = Vec::with_capacity(ctx.wire_len() + req.wire_len());
    ctx.encode_into(&mut payload);
    req.encode_into(&mut payload);
    WireFrame {
        tag: TRACED_REQUEST_TAG,
        payload,
    }
}

/// Build the deadline-bearing wire frame for `req`: tag
/// [`TRACED_REQUEST_TAG`], sentinel-0 layout, optional trace context,
/// and `deadline_micros` of remaining budget.
pub fn deadline_frame(ctx: Option<TraceContext>, deadline_micros: u64, req: &Request) -> WireFrame {
    let mut payload = Vec::with_capacity(20 + req.wire_len());
    payload.push(0);
    let (trace_id, parent_span) = match ctx {
        Some(c) => (c.trace_id, c.parent_span),
        None => (0, 0),
    };
    trace_id.encode_into(&mut payload);
    parent_span.encode_into(&mut payload);
    deadline_micros.encode_into(&mut payload);
    req.encode_into(&mut payload);
    WireFrame {
        tag: TRACED_REQUEST_TAG,
        payload,
    }
}

impl Wire for Request {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(self.opcode());
        match self {
            Request::Ingest(items) => items.encode_into(out),
            Request::Point(item) => item.encode_into(out),
            Request::HeavyHitters(phi) | Request::Quantile(phi) => phi.encode_into(out),
            Request::Rank(x) => x.encode_into(out),
            Request::NodeSummary(node) => node.encode_into(out),
            Request::RangeQuantile {
                start_micros,
                end_micros,
                phi,
            }
            | Request::RangeHeavyHitters {
                start_micros,
                end_micros,
                phi,
            } => {
                start_micros.encode_into(out);
                end_micros.encode_into(out);
                phi.encode_into(out);
            }
            Request::Ping
            | Request::Flush
            | Request::Metrics
            | Request::Summary
            | Request::Telemetry
            | Request::ClusterInfo
            | Request::SegmentInfo
            | Request::TraceDump
            | Request::AccuracyReport => {}
        }
    }

    fn decode_from(r: &mut WireReader<'_>) -> std::result::Result<Self, WireError> {
        Ok(match r.byte()? {
            0 => Request::Ping,
            1 => Request::Ingest(Vec::decode_from(r)?),
            2 => Request::Flush,
            3 => Request::Point(u64::decode_from(r)?),
            4 => Request::HeavyHitters(f64::decode_from(r)?),
            5 => Request::Rank(u64::decode_from(r)?),
            6 => Request::Quantile(f64::decode_from(r)?),
            7 => Request::Metrics,
            8 => Request::Summary,
            9 => Request::Telemetry,
            10 => Request::ClusterInfo,
            11 => Request::NodeSummary(u32::decode_from(r)?),
            12 => Request::RangeQuantile {
                start_micros: u64::decode_from(r)?,
                end_micros: u64::decode_from(r)?,
                phi: f64::decode_from(r)?,
            },
            13 => Request::RangeHeavyHitters {
                start_micros: u64::decode_from(r)?,
                end_micros: u64::decode_from(r)?,
                phi: f64::decode_from(r)?,
            },
            14 => Request::SegmentInfo,
            15 => Request::TraceDump,
            16 => Request::AccuracyReport,
            _ => return Err(WireError::Malformed("unknown request opcode")),
        })
    }
}

/// One server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Acknowledgement with no payload.
    Ok,
    /// A count (point estimate or rank).
    Count(u64),
    /// Heavy-hitter items with estimated counts.
    Items(Vec<(u64, u64)>),
    /// A quantile value; `None` if the summary is empty.
    Value(Option<u64>),
    /// Engine metrics.
    Metrics(MetricsReport),
    /// The encoded global summary.
    Summary(Vec<u8>),
    /// The request could not be served (e.g. a rank query against a
    /// heavy-hitter engine).
    Error(String),
    /// The telemetry registry snapshot.
    Telemetry(RegistrySnapshot),
    /// Cluster membership and hash-ring state (coordinator only).
    Cluster(ClusterInfo),
    /// A range-query answer with its coverage metadata.
    Range(RangeAnswer),
    /// The segment cube's index.
    Segments(SegmentReport),
    /// This process's flight-recorder rings ([`Request::TraceDump`]).
    Trace(TraceDumpReport),
    /// The accuracy self-audit ([`Request::AccuracyReport`]).
    Accuracy(AccuracyAudit),
    /// The request was shed under overload (admission control, an
    /// expired deadline, or a coordinator whose backends are all
    /// breaker-open). Distinct from [`Response::Error`] so clients can
    /// back off politely instead of treating the shed as fatal.
    Overloaded {
        /// Suggested client wait before retrying, in microseconds.
        retry_after_micros: u64,
    },
}

/// One recorded flight-recorder event, wire-encodable (the in-memory
/// [`ms_obs::TraceEvent`] uses `&'static str` names; crossing the wire
/// requires owned strings).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEventRecord {
    /// Span/event name.
    pub name: String,
    /// Start offset in the recording process's flight clock (micros).
    pub start_micros: u64,
    /// Duration in micros (0 for instant events).
    pub duration_micros: u64,
    /// Named `u64` fields; trace identity rides here under
    /// [`crate::tracectx::FIELD_TRACE`] / `FIELD_SPAN` / `FIELD_PARENT`.
    pub fields: Vec<(String, u64)>,
}

impl Wire for TraceEventRecord {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.name.encode_into(out);
        self.start_micros.encode_into(out);
        self.duration_micros.encode_into(out);
        self.fields.encode_into(out);
    }

    fn decode_from(r: &mut WireReader<'_>) -> std::result::Result<Self, WireError> {
        Ok(TraceEventRecord {
            name: String::decode_from(r)?,
            start_micros: u64::decode_from(r)?,
            duration_micros: u64::decode_from(r)?,
            fields: Vec::decode_from(r)?,
        })
    }
}

/// One per-thread ring in a [`TraceDumpReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadTrace {
    /// Ring label (`"conn"`, `"worker3"`, `"engine"` …).
    pub label: String,
    /// Events overwritten since the ring was registered — how much
    /// history this dump has already lost.
    pub evicted: u64,
    /// Surviving events, oldest first.
    pub events: Vec<TraceEventRecord>,
}

impl Wire for ThreadTrace {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.label.encode_into(out);
        self.evicted.encode_into(out);
        self.events.encode_into(out);
    }

    fn decode_from(r: &mut WireReader<'_>) -> std::result::Result<Self, WireError> {
        Ok(ThreadTrace {
            label: String::decode_from(r)?,
            evicted: u64::decode_from(r)?,
            events: Vec::decode_from(r)?,
        })
    }
}

/// A process's flight-recorder contents served by
/// [`Request::TraceDump`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceDumpReport {
    /// The process's telemetry seed (trace ids derive from it).
    pub seed: u64,
    /// Per-thread ring capacity in events.
    pub ring_capacity: u64,
    /// Flight-clock reading when the dump was taken.
    pub captured_micros: u64,
    /// Every registered ring.
    pub threads: Vec<ThreadTrace>,
}

impl Wire for TraceDumpReport {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.seed.encode_into(out);
        self.ring_capacity.encode_into(out);
        self.captured_micros.encode_into(out);
        self.threads.encode_into(out);
    }

    fn decode_from(r: &mut WireReader<'_>) -> std::result::Result<Self, WireError> {
        Ok(TraceDumpReport {
            seed: u64::decode_from(r)?,
            ring_capacity: u64::decode_from(r)?,
            captured_micros: u64::decode_from(r)?,
            threads: Vec::decode_from(r)?,
        })
    }
}

/// The accuracy self-audit served by [`Request::AccuracyReport`]: merge
/// lineage plus observed-vs-bound error, mergeable across nodes the
/// same way the summaries themselves are.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyAudit {
    /// Summary kind label (`"mg"`, `"gk"`, …).
    pub kind: String,
    /// Configured error parameter ε.
    pub epsilon: f64,
    /// Total stream weight n the summary covers.
    pub weight: u64,
    /// The bound the paper promises: ε·n at the current weight.
    pub envelope: f64,
    /// Merge operations the summary lineage has absorbed.
    pub merges: u64,
    /// Depth of the deepest merge tree in the lineage.
    pub depth: u64,
    /// Stream weight the audit plane actually observed (0 when the
    /// audit is disabled; may trail `weight` when a checkpoint preloaded
    /// state the audit never saw).
    pub audit_weight: u64,
    /// Distinct items tracked exactly (frequency audit) — 0 for
    /// quantile audits, which sample instead.
    pub audited_items: u64,
    /// Raw items held in the audit reservoir (quantile audit).
    pub reservoir_len: u64,
    /// Largest observed |estimate − reference| across the audited set.
    pub observed_error: f64,
    /// Extra error budget attributable to the audit's own sampling
    /// (0 for the exact frequency audit).
    pub sampling_slack: f64,
    /// `observed_error ≤ envelope + sampling_slack` at audit time.
    pub within_bound: bool,
    /// Nodes merged into this report (1 for a single engine).
    pub nodes: u32,
}

impl AccuracyAudit {
    /// Fold another node's audit into this one, mirroring how the
    /// summaries merge: weights, envelopes and audited sets add; the
    /// observed error, depth and slack of the merged report are the
    /// worst across members; the bound holds only if it held everywhere.
    pub fn merge_from(&mut self, other: &AccuracyAudit) {
        self.weight += other.weight;
        self.envelope += other.envelope;
        self.merges += other.merges;
        self.depth = self.depth.max(other.depth);
        self.audit_weight += other.audit_weight;
        self.audited_items += other.audited_items;
        self.reservoir_len += other.reservoir_len;
        self.observed_error = self.observed_error.max(other.observed_error);
        self.sampling_slack = self.sampling_slack.max(other.sampling_slack);
        self.within_bound = self.within_bound && other.within_bound;
        self.nodes += other.nodes;
    }
}

impl Wire for AccuracyAudit {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.kind.encode_into(out);
        self.epsilon.encode_into(out);
        self.weight.encode_into(out);
        self.envelope.encode_into(out);
        self.merges.encode_into(out);
        self.depth.encode_into(out);
        self.audit_weight.encode_into(out);
        self.audited_items.encode_into(out);
        self.reservoir_len.encode_into(out);
        self.observed_error.encode_into(out);
        self.sampling_slack.encode_into(out);
        self.within_bound.encode_into(out);
        self.nodes.encode_into(out);
    }

    fn decode_from(r: &mut WireReader<'_>) -> std::result::Result<Self, WireError> {
        Ok(AccuracyAudit {
            kind: String::decode_from(r)?,
            epsilon: f64::decode_from(r)?,
            weight: u64::decode_from(r)?,
            envelope: f64::decode_from(r)?,
            merges: u64::decode_from(r)?,
            depth: u64::decode_from(r)?,
            audit_weight: u64::decode_from(r)?,
            audited_items: u64::decode_from(r)?,
            reservoir_len: u64::decode_from(r)?,
            observed_error: f64::decode_from(r)?,
            sampling_slack: f64::decode_from(r)?,
            within_bound: bool::decode_from(r)?,
            nodes: u32::decode_from(r)?,
        })
    }
}

/// What a range query actually covered. Segment boundaries are batch
/// boundaries, so the answered range snaps outward to whole segments;
/// the caller reads here how far.
#[derive(Debug, Clone, PartialEq)]
pub struct RangeMeta {
    /// Requested window start (engine-clock micros, inclusive).
    pub start_micros: u64,
    /// Requested window end (engine-clock micros, inclusive).
    pub end_micros: u64,
    /// Segments merged to answer (including the open one when covered).
    pub segments_merged: u32,
    /// True when the open (still-ingesting) segment was snapshotted in.
    pub open_included: bool,
    /// Exact total item weight of the merged segments — the `n` the
    /// eps·n error bound applies to.
    pub covered_weight: u64,
    /// First batch seq covered (0 when the window covered nothing).
    pub start_seq: u64,
    /// Last batch seq covered (0 when the window covered nothing).
    pub end_seq: u64,
}

impl Wire for RangeMeta {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.start_micros.encode_into(out);
        self.end_micros.encode_into(out);
        self.segments_merged.encode_into(out);
        self.open_included.encode_into(out);
        self.covered_weight.encode_into(out);
        self.start_seq.encode_into(out);
        self.end_seq.encode_into(out);
    }

    fn decode_from(r: &mut WireReader<'_>) -> std::result::Result<Self, WireError> {
        Ok(RangeMeta {
            start_micros: u64::decode_from(r)?,
            end_micros: u64::decode_from(r)?,
            segments_merged: u32::decode_from(r)?,
            open_included: bool::decode_from(r)?,
            covered_weight: u64::decode_from(r)?,
            start_seq: u64::decode_from(r)?,
            end_seq: u64::decode_from(r)?,
        })
    }
}

/// A served range query: the scalar answer plus the merged summary it
/// was computed from, so a coordinator can merge answers from many
/// nodes (Definition 1) and recompute instead of averaging scalars.
#[derive(Debug, Clone, PartialEq)]
pub struct RangeAnswer {
    /// Coverage metadata.
    pub meta: RangeMeta,
    /// Quantile value ([`Request::RangeQuantile`]); `None` when the
    /// window covered no weight or for heavy-hitter queries.
    pub value: Option<u64>,
    /// Heavy hitters ([`Request::RangeHeavyHitters`]); empty for
    /// quantile queries.
    pub items: Vec<(u64, u64)>,
    /// The merged per-window summary, `ShardSummary`-encoded.
    pub summary: Vec<u8>,
}

impl Wire for RangeAnswer {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.meta.encode_into(out);
        self.value.encode_into(out);
        self.items.encode_into(out);
        self.summary.encode_into(out);
    }

    fn decode_from(r: &mut WireReader<'_>) -> std::result::Result<Self, WireError> {
        Ok(RangeAnswer {
            meta: RangeMeta::decode_from(r)?,
            value: Option::decode_from(r)?,
            items: Vec::decode_from(r)?,
            summary: Vec::decode_from(r)?,
        })
    }
}

/// One segment in a [`SegmentReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentMeta {
    /// Segment id (dense, increasing; the open segment is next_id).
    pub id: u64,
    /// First batch seq in the segment.
    pub start_seq: u64,
    /// Last batch seq in the segment (≥ start_seq when non-empty).
    pub end_seq: u64,
    /// Engine-clock micros when the segment opened.
    pub start_micros: u64,
    /// Engine-clock micros of the last batch (still moving while open).
    pub end_micros: u64,
    /// Total item weight in the segment.
    pub weight: u64,
    /// Batches in the segment.
    pub batches: u64,
    /// False only for the trailing open segment.
    pub sealed: bool,
    /// Coarsening tier: 0 for an as-sealed segment, `max(a,b)+1` when
    /// pressure merged two adjacent segments `a`,`b` into this one
    /// (DESIGN.md §Overload model — lossless w.r.t. eps·n on admitted
    /// weight, per Definition 1).
    pub tier: u64,
}

impl Wire for SegmentMeta {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.id.encode_into(out);
        self.start_seq.encode_into(out);
        self.end_seq.encode_into(out);
        self.start_micros.encode_into(out);
        self.end_micros.encode_into(out);
        self.weight.encode_into(out);
        self.batches.encode_into(out);
        self.sealed.encode_into(out);
        self.tier.encode_into(out);
    }

    fn decode_from(r: &mut WireReader<'_>) -> std::result::Result<Self, WireError> {
        Ok(SegmentMeta {
            id: u64::decode_from(r)?,
            start_seq: u64::decode_from(r)?,
            end_seq: u64::decode_from(r)?,
            start_micros: u64::decode_from(r)?,
            end_micros: u64::decode_from(r)?,
            weight: u64::decode_from(r)?,
            batches: u64::decode_from(r)?,
            sealed: bool::decode_from(r)?,
            tier: u64::decode_from(r)?,
        })
    }
}

/// The segment cube's index served by [`Request::SegmentInfo`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentReport {
    /// The engine clock's current reading, so callers can compute
    /// "last 5 minutes" windows against the same clock that stamped
    /// the segments.
    pub now_micros: u64,
    /// Sealed segments in id order, then the open segment (if any
    /// batches have arrived since the last seal).
    pub segments: Vec<SegmentMeta>,
}

impl Wire for SegmentReport {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.now_micros.encode_into(out);
        self.segments.encode_into(out);
    }

    fn decode_from(r: &mut WireReader<'_>) -> std::result::Result<Self, WireError> {
        Ok(SegmentReport {
            now_micros: u64::decode_from(r)?,
            segments: Vec::decode_from(r)?,
        })
    }
}

/// Liveness of one backend node, as judged by a coordinator from request
/// outcomes and periodic pings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeState {
    /// Serving requests normally.
    Alive,
    /// At least one recent failure; still routed to, watched closely.
    Suspect,
    /// Enough consecutive failures that the hash ring routes around it
    /// until a ping or an explicit rejoin revives it.
    Dead,
}

impl NodeState {
    /// Stable display label.
    pub fn label(&self) -> &'static str {
        match self {
            NodeState::Alive => "alive",
            NodeState::Suspect => "suspect",
            NodeState::Dead => "dead",
        }
    }
}

impl Wire for NodeState {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(match self {
            NodeState::Alive => 0,
            NodeState::Suspect => 1,
            NodeState::Dead => 2,
        });
    }

    fn decode_from(r: &mut WireReader<'_>) -> std::result::Result<Self, WireError> {
        Ok(match r.byte()? {
            0 => NodeState::Alive,
            1 => NodeState::Suspect,
            2 => NodeState::Dead,
            _ => return Err(WireError::Malformed("unknown node state")),
        })
    }
}

/// One backend node as seen from the coordinator.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeInfo {
    /// Position in the coordinator's node list (also the
    /// [`Request::NodeSummary`] index).
    pub index: u32,
    /// The node's current address (rejoin may move it).
    pub addr: String,
    /// Membership state.
    pub state: NodeState,
    /// Consecutive failed requests since the last success.
    pub consecutive_failures: u32,
    /// Requests the coordinator has sent this node.
    pub requests: u64,
    /// Requests that failed (transport or engine error).
    pub failures: u64,
    /// Snapshot weight last observed on this node (0 until first seen).
    pub last_weight: u64,
}

impl Wire for NodeInfo {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.index.encode_into(out);
        self.addr.encode_into(out);
        self.state.encode_into(out);
        self.consecutive_failures.encode_into(out);
        self.requests.encode_into(out);
        self.failures.encode_into(out);
        self.last_weight.encode_into(out);
    }

    fn decode_from(r: &mut WireReader<'_>) -> std::result::Result<Self, WireError> {
        Ok(NodeInfo {
            index: u32::decode_from(r)?,
            addr: String::decode_from(r)?,
            state: NodeState::decode_from(r)?,
            consecutive_failures: u32::decode_from(r)?,
            requests: u64::decode_from(r)?,
            failures: u64::decode_from(r)?,
            last_weight: u64::decode_from(r)?,
        })
    }
}

/// Cluster membership + routing state served by [`Request::ClusterInfo`].
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterInfo {
    /// Every backend node, in index order.
    pub nodes: Vec<NodeInfo>,
    /// Whether nodes are paired into replica slots.
    pub replicas: bool,
    /// Hash-ring slots (node pairs when replicated, else one per node).
    pub slots: u32,
    /// Virtual nodes per slot on the ring.
    pub vnodes: u32,
    /// Ingest buckets delivered to a slot other than their home slot
    /// because the home slot was entirely dead (ring rebalances).
    pub rebalanced_batches: u64,
}

impl Wire for ClusterInfo {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.nodes.encode_into(out);
        self.replicas.encode_into(out);
        self.slots.encode_into(out);
        self.vnodes.encode_into(out);
        self.rebalanced_batches.encode_into(out);
    }

    fn decode_from(r: &mut WireReader<'_>) -> std::result::Result<Self, WireError> {
        Ok(ClusterInfo {
            nodes: Vec::decode_from(r)?,
            replicas: bool::decode_from(r)?,
            slots: u32::decode_from(r)?,
            vnodes: u32::decode_from(r)?,
            rebalanced_batches: u64::decode_from(r)?,
        })
    }
}

impl Wire for Response {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Response::Ok => out.push(0),
            Response::Count(v) => {
                out.push(1);
                v.encode_into(out);
            }
            Response::Items(items) => {
                out.push(2);
                items.encode_into(out);
            }
            Response::Value(v) => {
                out.push(3);
                v.encode_into(out);
            }
            Response::Metrics(m) => {
                out.push(4);
                m.encode_into(out);
            }
            Response::Summary(bytes) => {
                out.push(5);
                bytes.encode_into(out);
            }
            Response::Error(msg) => {
                out.push(6);
                msg.encode_into(out);
            }
            Response::Telemetry(snapshot) => {
                out.push(7);
                snapshot.encode_into(out);
            }
            Response::Cluster(info) => {
                out.push(8);
                info.encode_into(out);
            }
            Response::Range(answer) => {
                out.push(9);
                answer.encode_into(out);
            }
            Response::Segments(report) => {
                out.push(10);
                report.encode_into(out);
            }
            Response::Trace(dump) => {
                out.push(11);
                dump.encode_into(out);
            }
            Response::Accuracy(audit) => {
                out.push(12);
                audit.encode_into(out);
            }
            Response::Overloaded { retry_after_micros } => {
                out.push(13);
                retry_after_micros.encode_into(out);
            }
        }
    }

    fn decode_from(r: &mut WireReader<'_>) -> std::result::Result<Self, WireError> {
        Ok(match r.byte()? {
            0 => Response::Ok,
            1 => Response::Count(u64::decode_from(r)?),
            2 => Response::Items(Vec::decode_from(r)?),
            3 => Response::Value(Option::decode_from(r)?),
            4 => Response::Metrics(MetricsReport::decode_from(r)?),
            5 => Response::Summary(Vec::decode_from(r)?),
            6 => Response::Error(String::decode_from(r)?),
            7 => Response::Telemetry(RegistrySnapshot::decode_from(r)?),
            8 => Response::Cluster(ClusterInfo::decode_from(r)?),
            9 => Response::Range(RangeAnswer::decode_from(r)?),
            10 => Response::Segments(SegmentReport::decode_from(r)?),
            11 => Response::Trace(TraceDumpReport::decode_from(r)?),
            12 => Response::Accuracy(AccuracyAudit::decode_from(r)?),
            13 => Response::Overloaded {
                retry_after_micros: u64::decode_from(r)?,
            },
            _ => return Err(WireError::Malformed("unknown response opcode")),
        })
    }
}

impl Wire for MetricsReport {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.updates.encode_into(out);
        self.batches.encode_into(out);
        self.dropped.encode_into(out);
        self.merges.encode_into(out);
        self.epoch.encode_into(out);
        self.snapshot_age_micros.encode_into(out);
        self.snapshot_weight.encode_into(out);
        self.shards_lost.encode_into(out);
        self.frames_rejected.encode_into(out);
        self.retries.encode_into(out);
    }

    fn decode_from(r: &mut WireReader<'_>) -> std::result::Result<Self, WireError> {
        Ok(MetricsReport {
            updates: u64::decode_from(r)?,
            batches: u64::decode_from(r)?,
            dropped: u64::decode_from(r)?,
            merges: u64::decode_from(r)?,
            epoch: u64::decode_from(r)?,
            snapshot_age_micros: u64::decode_from(r)?,
            snapshot_weight: u64::decode_from(r)?,
            shards_lost: u64::decode_from(r)?,
            frames_rejected: u64::decode_from(r)?,
            retries: u64::decode_from(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_roundtrip() {
        let cases = [
            Request::Ping,
            Request::Ingest(vec![1, 2, 3, u64::MAX]),
            Request::Flush,
            Request::Point(42),
            Request::HeavyHitters(0.01),
            Request::Rank(7),
            Request::Quantile(0.5),
            Request::Metrics,
            Request::Summary,
            Request::Telemetry,
            Request::ClusterInfo,
            Request::NodeSummary(0),
            Request::NodeSummary(u32::MAX),
            Request::RangeQuantile {
                start_micros: 0,
                end_micros: u64::MAX,
                phi: 0.99,
            },
            Request::RangeHeavyHitters {
                start_micros: 1_000_000,
                end_micros: 2_000_000,
                phi: 0.01,
            },
            Request::SegmentInfo,
            Request::TraceDump,
            Request::AccuracyReport,
        ];
        for req in cases {
            assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        }
    }

    #[test]
    fn responses_roundtrip() {
        let cases = [
            Response::Ok,
            Response::Count(99),
            Response::Items(vec![(1, 10), (2, 20)]),
            Response::Value(None),
            Response::Value(Some(123)),
            Response::Metrics(MetricsReport {
                updates: 1,
                batches: 2,
                dropped: 3,
                merges: 4,
                epoch: 5,
                snapshot_age_micros: 6,
                snapshot_weight: 7,
                shards_lost: 8,
                frames_rejected: 9,
                retries: 10,
            }),
            Response::Summary(vec![0xAB; 16]),
            Response::Error("nope".into()),
            Response::Telemetry(RegistrySnapshot::default()),
            Response::Cluster(ClusterInfo {
                nodes: vec![
                    NodeInfo {
                        index: 0,
                        addr: "127.0.0.1:7433".into(),
                        state: NodeState::Alive,
                        consecutive_failures: 0,
                        requests: 100,
                        failures: 0,
                        last_weight: 42_000,
                    },
                    NodeInfo {
                        index: 1,
                        addr: "10.0.0.2:7433".into(),
                        state: NodeState::Dead,
                        consecutive_failures: u32::MAX,
                        requests: u64::MAX,
                        failures: u64::MAX,
                        last_weight: 0,
                    },
                ],
                replicas: true,
                slots: 1,
                vnodes: 64,
                rebalanced_batches: 7,
            }),
            Response::Range(RangeAnswer {
                meta: RangeMeta {
                    start_micros: 5,
                    end_micros: u64::MAX,
                    segments_merged: 3,
                    open_included: true,
                    covered_weight: 12_345,
                    start_seq: 1,
                    end_seq: 190,
                },
                value: Some(77),
                items: vec![(9, 900), (4, 400)],
                summary: vec![0xCD; 24],
            }),
            Response::Segments(SegmentReport {
                now_micros: 99,
                segments: vec![
                    SegmentMeta {
                        id: 0,
                        start_seq: 1,
                        end_seq: 64,
                        start_micros: 0,
                        end_micros: 10,
                        weight: 6_400,
                        batches: 64,
                        sealed: true,
                        tier: 2,
                    },
                    SegmentMeta {
                        id: 1,
                        start_seq: 65,
                        end_seq: 70,
                        start_micros: 11,
                        end_micros: 99,
                        weight: 600,
                        batches: 6,
                        sealed: false,
                        tier: 0,
                    },
                ],
            }),
            Response::Trace(TraceDumpReport {
                seed: 0xF417_5EED,
                ring_capacity: 256,
                captured_micros: 1_000_000,
                threads: vec![
                    ThreadTrace {
                        label: "conn".into(),
                        evicted: 42,
                        events: vec![TraceEventRecord {
                            name: "request".into(),
                            start_micros: 5,
                            duration_micros: 17,
                            fields: vec![
                                ("trace".into(), u64::MAX),
                                ("span".into(), 9),
                                ("parent".into(), 0),
                            ],
                        }],
                    },
                    ThreadTrace {
                        label: "worker0".into(),
                        evicted: 0,
                        events: vec![],
                    },
                ],
            }),
            Response::Accuracy(AccuracyAudit {
                kind: "mg".into(),
                epsilon: 0.01,
                weight: 1_000_000,
                envelope: 10_000.0,
                merges: 37,
                depth: 6,
                audit_weight: 1_000_000,
                audited_items: 61,
                reservoir_len: 4096,
                observed_error: 42.5,
                sampling_slack: 0.0,
                within_bound: true,
                nodes: 3,
            }),
            Response::Overloaded {
                retry_after_micros: 0,
            },
            Response::Overloaded {
                retry_after_micros: u64::MAX,
            },
        ];
        for resp in cases {
            assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        }
    }

    #[test]
    fn telemetry_response_roundtrips_populated_snapshot() {
        let registry = ms_obs::MetricsRegistry::new();
        registry.counter("server_bytes_in_total").add(u64::MAX);
        registry.gauge("queue_depth{shard=\"0\"}").set(i64::MIN);
        let h = registry.histogram("request_micros{op=\"ingest\"}");
        h.record(0);
        h.record(u64::MAX);
        let resp = Response::Telemetry(registry.snapshot());
        assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
    }

    #[test]
    fn metrics_report_roundtrips_all_max_values() {
        // Every field at u64::MAX: the varint encoder's widest case. A
        // regression here would silently corrupt counters reported by
        // long-lived servers.
        let report = MetricsReport {
            updates: u64::MAX,
            batches: u64::MAX,
            dropped: u64::MAX,
            merges: u64::MAX,
            epoch: u64::MAX,
            snapshot_age_micros: u64::MAX,
            snapshot_weight: u64::MAX,
            shards_lost: u64::MAX,
            frames_rejected: u64::MAX,
            retries: u64::MAX,
        };
        assert_eq!(MetricsReport::decode(&report.encode()).unwrap(), report);
        let resp = Response::Metrics(report);
        assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
    }

    #[test]
    fn bad_opcodes_rejected() {
        assert!(Request::decode(&[99]).is_err());
        assert!(Response::decode(&[99]).is_err());
    }

    #[test]
    fn idempotency_classification() {
        assert!(!Request::Ingest(vec![1]).is_idempotent());
        for req in [
            Request::Ping,
            Request::Flush,
            Request::Point(1),
            Request::HeavyHitters(0.1),
            Request::Rank(1),
            Request::Quantile(0.5),
            Request::Metrics,
            Request::Summary,
            Request::Telemetry,
            Request::ClusterInfo,
            Request::NodeSummary(2),
            Request::RangeQuantile {
                start_micros: 0,
                end_micros: 1,
                phi: 0.5,
            },
            Request::RangeHeavyHitters {
                start_micros: 0,
                end_micros: 1,
                phi: 0.1,
            },
            Request::SegmentInfo,
            // Both observability pulls are pure reads: retrying after a
            // transport failure can only re-dump rings / re-run the audit.
            Request::TraceDump,
            Request::AccuracyReport,
        ] {
            assert!(req.is_idempotent(), "{req:?}");
        }
    }

    #[test]
    fn node_state_rejects_unknown_discriminant() {
        assert!(NodeState::decode(&[3]).is_err());
    }

    #[test]
    fn metrics_report_merge_sums_counters_and_maxes_gauges() {
        let a = MetricsReport {
            updates: 100,
            batches: 10,
            dropped: 1,
            merges: 5,
            epoch: 9,
            snapshot_age_micros: 50,
            snapshot_weight: 100,
            shards_lost: 0,
            frames_rejected: 2,
            retries: 3,
        };
        let mut m = a;
        m.merge_from(&MetricsReport {
            updates: 200,
            batches: 20,
            dropped: 0,
            merges: 7,
            epoch: 4,
            snapshot_age_micros: 900,
            snapshot_weight: 200,
            shards_lost: 1,
            frames_rejected: 0,
            retries: 1,
        });
        // Work counters sum across nodes...
        assert_eq!(m.updates, 300);
        assert_eq!(m.batches, 30);
        assert_eq!(m.dropped, 1);
        assert_eq!(m.merges, 12);
        assert_eq!(m.snapshot_weight, 300);
        assert_eq!(m.shards_lost, 1);
        assert_eq!(m.frames_rejected, 2);
        assert_eq!(m.retries, 4);
        // ...but per-node gauges do not: epochs advance independently, so
        // a sum would fabricate an epoch no node ever published, and the
        // cluster's snapshot is only as fresh as its stalest member.
        assert_eq!(m.epoch, 9);
        assert_eq!(m.snapshot_age_micros, 900);
    }

    #[test]
    fn decode_request_rejects_wrong_tag_and_trailing_bytes() {
        let good = WireFrame::from_value(REQUEST_TAG, &Request::Ping);
        assert_eq!(decode_request(&good).unwrap(), Request::Ping);

        let wrong_tag = WireFrame::from_value(RESPONSE_TAG, &Request::Ping);
        assert_eq!(
            decode_request(&wrong_tag).unwrap_err(),
            WireError::BadTag(RESPONSE_TAG)
        );

        let mut trailing = good.clone();
        trailing.payload.push(0xFF);
        assert_eq!(
            decode_request(&trailing).unwrap_err(),
            WireError::Trailing(1)
        );

        let truncated = WireFrame {
            tag: REQUEST_TAG,
            payload: Vec::new(),
        };
        assert_eq!(
            decode_request(&truncated).unwrap_err(),
            WireError::Truncated
        );
    }

    #[test]
    fn traced_frames_roundtrip_and_plain_frames_still_decode() {
        let ctx = TraceContext {
            trace_id: 0xDEAD_BEEF_CAFE_F00D,
            parent_span: 77,
        };
        let req = Request::Quantile(0.5);
        let frame = traced_frame(ctx, &req);
        assert_eq!(frame.tag, TRACED_REQUEST_TAG);
        assert_eq!(
            decode_traced_request(&frame).unwrap(),
            (
                req,
                RequestEnvelope {
                    ctx: Some(ctx),
                    deadline_micros: None,
                }
            )
        );

        // A plain frame decodes through the same entry point, context-free.
        let plain = WireFrame::from_value(REQUEST_TAG, &Request::Ping);
        assert_eq!(
            decode_traced_request(&plain).unwrap(),
            (Request::Ping, RequestEnvelope::default())
        );

        // But decode_request (old entry point) rejects the traced tag, so
        // a component that never learned about tracing fails loudly
        // instead of misparsing the context bytes as an opcode.
        assert_eq!(
            decode_request(&frame).unwrap_err(),
            WireError::BadTag(TRACED_REQUEST_TAG)
        );
    }

    #[test]
    fn traced_decode_rejects_truncation_trailing_and_bad_tags() {
        let ctx = TraceContext {
            trace_id: 1,
            parent_span: 0,
        };
        let good = traced_frame(ctx, &Request::Flush);

        let mut trailing = good.clone();
        trailing.payload.push(0xAB);
        assert_eq!(
            decode_traced_request(&trailing).unwrap_err(),
            WireError::Trailing(1)
        );

        // Context present, request missing.
        let mut cut = good.clone();
        cut.payload.truncate(ctx.wire_len());
        assert_eq!(
            decode_traced_request(&cut).unwrap_err(),
            WireError::Truncated
        );

        let response_tag = WireFrame::from_value(RESPONSE_TAG, &Request::Ping);
        assert_eq!(
            decode_traced_request(&response_tag).unwrap_err(),
            WireError::BadTag(RESPONSE_TAG)
        );
    }

    #[test]
    fn deadline_frames_roundtrip_with_and_without_context() {
        let ctx = TraceContext {
            trace_id: 0xFEED_F00D,
            parent_span: 42,
        };
        let req = Request::Ingest(vec![1, 2, 3]);

        let with_ctx = deadline_frame(Some(ctx), 250_000, &req);
        assert_eq!(with_ctx.tag, TRACED_REQUEST_TAG);
        assert_eq!(with_ctx.payload[0], 0, "sentinel byte discriminates v2");
        assert_eq!(
            decode_traced_request(&with_ctx).unwrap(),
            (
                req.clone(),
                RequestEnvelope {
                    ctx: Some(ctx),
                    deadline_micros: Some(250_000),
                }
            )
        );

        // Deadline without a trace context (trace id 0 on the wire).
        let bare = deadline_frame(None, 0, &Request::Quantile(0.5));
        assert_eq!(
            decode_traced_request(&bare).unwrap(),
            (
                Request::Quantile(0.5),
                RequestEnvelope {
                    ctx: None,
                    deadline_micros: Some(0),
                }
            )
        );

        // Legacy and v2 frames for the same (ctx, request) differ only by
        // the envelope prefix; the legacy decode path is byte-stable.
        let legacy = traced_frame(ctx, &req);
        assert_ne!(legacy.payload, with_ctx.payload);
        assert_eq!(
            decode_traced_request(&legacy).unwrap().1,
            RequestEnvelope {
                ctx: Some(ctx),
                deadline_micros: None,
            }
        );
    }

    #[test]
    fn deadline_frame_rejects_truncation_and_trailing() {
        let frame = deadline_frame(None, 9_000, &Request::Ping);

        let mut trailing = frame.clone();
        trailing.payload.push(0x00);
        assert_eq!(
            decode_traced_request(&trailing).unwrap_err(),
            WireError::Trailing(1)
        );

        // Envelope present, request missing.
        let mut cut = frame.clone();
        cut.payload.truncate(frame.payload.len() - 1);
        assert_eq!(
            decode_traced_request(&cut).unwrap_err(),
            WireError::Truncated
        );

        // Sentinel alone is a truncated envelope, not an empty one.
        let bare_sentinel = WireFrame {
            tag: TRACED_REQUEST_TAG,
            payload: vec![0],
        };
        assert_eq!(
            decode_traced_request(&bare_sentinel).unwrap_err(),
            WireError::Truncated
        );
    }

    #[test]
    fn accuracy_audit_merges_like_a_summary() {
        let mut a = AccuracyAudit {
            kind: "mg".into(),
            epsilon: 0.01,
            weight: 100,
            envelope: 1.0,
            merges: 4,
            depth: 2,
            audit_weight: 100,
            audited_items: 7,
            reservoir_len: 64,
            observed_error: 0.5,
            sampling_slack: 0.0,
            within_bound: true,
            nodes: 1,
        };
        let b = AccuracyAudit {
            kind: "mg".into(),
            epsilon: 0.01,
            weight: 300,
            envelope: 3.0,
            merges: 9,
            depth: 5,
            audit_weight: 250,
            audited_items: 11,
            reservoir_len: 64,
            observed_error: 2.0,
            sampling_slack: 0.25,
            within_bound: false,
            nodes: 2,
        };
        a.merge_from(&b);
        // Additive like n itself...
        assert_eq!(a.weight, 400);
        assert_eq!(a.envelope, 4.0);
        assert_eq!(a.merges, 13);
        assert_eq!(a.audit_weight, 350);
        assert_eq!(a.audited_items, 18);
        assert_eq!(a.reservoir_len, 128);
        assert_eq!(a.nodes, 3);
        // ...worst-case for the bound-facing fields.
        assert_eq!(a.depth, 5);
        assert_eq!(a.observed_error, 2.0);
        assert_eq!(a.sampling_slack, 0.25);
        assert!(!a.within_bound, "one violating node taints the cluster");
    }
}

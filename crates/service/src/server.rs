//! Blocking TCP server and client for the engine, framed with
//! [`WireFrame`] (`std::net` only — one thread per connection, graceful
//! shutdown via a stop flag plus a wake-up connection).
//!
//! Failure paths are first-class: a malformed frame is answered with a
//! [`Response::Error`] and counted in the engine's `frames_rejected`
//! metric instead of killing the connection thread; mid-frame EOF (a peer
//! that died between bytes, or a partial TCP write) closes only that
//! connection. The [`Client`] enforces per-request timeouts and retries
//! transient failures of idempotent requests with exponential backoff
//! ([`ClientOptions`]), so a hung server surfaces as a typed
//! [`ServiceError::Timeout`] rather than a wedged caller.

use std::io::{self, Write};
use std::net::{Shutdown as NetShutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ms_core::wire::{encode_frame_into, encode_u64_slice_into, FRAME_HEADER_LEN};
use ms_core::{ServiceError, Wire, WireFrame};
use ms_obs::RegistrySnapshot;

use crate::config::SummaryKind;
use crate::deadline;
use crate::engine::{Engine, MetricsReport};
use crate::overload::{Admission, AdmitGuard};
use crate::protocol::{
    deadline_frame, decode_traced_request, traced_frame, AccuracyAudit, RangeAnswer, Request,
    RequestEnvelope, Response, SegmentReport, TraceDumpReport, REQUEST_TAG, RESPONSE_TAG,
    TRACED_REQUEST_TAG,
};
use crate::telemetry::{timed, EngineTelemetry};
use crate::tracectx::{self, TraceContext, FIELD_PARENT, FIELD_SPAN, FIELD_TRACE};

/// Anything a [`Server`] can front: one request in, one response out,
/// plus the telemetry plane the connection loop records into. The
/// [`Engine`] is the single-node implementation; a cluster coordinator
/// implements the same trait to serve the identical wire protocol by
/// scatter/gather over backend nodes.
pub trait Service: Send + Sync + 'static {
    /// Serve one decoded request.
    fn handle(&self, request: Request) -> Response;

    /// The telemetry plane (per-opcode latency, byte counters).
    fn telemetry(&self) -> &Arc<EngineTelemetry>;

    /// Count one malformed wire frame.
    fn record_rejected_frame(&self);

    /// Graceful shutdown: drain and publish before stopping.
    fn shutdown(&self);

    /// Hard stop with no final drain (simulated `kill -9`).
    fn abort(&self);

    /// The admission controller the connection loop consults before
    /// dispatching, if this service does load shedding. The default (no
    /// controller) admits everything.
    fn admission(&self) -> Option<&Arc<Admission>> {
        None
    }
}

impl Service for Engine {
    fn handle(&self, request: Request) -> Response {
        dispatch(self, request)
    }

    fn admission(&self) -> Option<&Arc<Admission>> {
        Some(Engine::admission(self))
    }

    fn telemetry(&self) -> &Arc<EngineTelemetry> {
        Engine::telemetry(self)
    }

    fn record_rejected_frame(&self) {
        Engine::record_rejected_frame(self);
    }

    fn shutdown(&self) {
        Engine::shutdown(self);
    }

    fn abort(&self) {
        Engine::abort(self);
    }
}

/// A running TCP front-end over a [`Service`] (an [`Engine`] or a
/// cluster coordinator).
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    service: Arc<dyn Service>,
    /// Set only by [`Server::bind`]; [`Server::engine`] needs it.
    engine: Option<Arc<Engine>>,
    /// One cloned handle per accepted connection, so [`Server::kill`]
    /// can sever live peers the way a dying process severs them.
    conns: Arc<Mutex<Vec<TcpStream>>>,
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and start
    /// accepting connections, each served by its own thread.
    pub fn bind(engine: Arc<Engine>, addr: impl ToSocketAddrs) -> Result<Server, ServiceError> {
        let mut server = Self::bind_service(Arc::clone(&engine) as Arc<dyn Service>, addr)?;
        server.engine = Some(engine);
        Ok(server)
    }

    /// Bind `addr` over any [`Service`] implementation. The front-end is
    /// byte-identical to [`Server::bind`]; only [`Server::engine`] is
    /// unavailable.
    pub fn bind_service(
        service: Arc<dyn Service>,
        addr: impl ToSocketAddrs,
    ) -> Result<Server, ServiceError> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let accept_stop = Arc::clone(&stop);
        let accept_service = Arc::clone(&service);
        let accept_conns = Arc::clone(&conns);
        let accept_handle = std::thread::Builder::new()
            .name("ms-accept".to_string())
            .spawn(move || {
                for conn in listener.incoming() {
                    if accept_stop.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    if let Ok(clone) = stream.try_clone() {
                        lock(&accept_conns).push(clone);
                    }
                    let service = Arc::clone(&accept_service);
                    let _ = std::thread::Builder::new()
                        .name("ms-conn".to_string())
                        .spawn(move || serve_connection(stream, service));
                }
            })?;
        Ok(Server {
            addr,
            stop,
            accept_handle: Some(accept_handle),
            service,
            engine: None,
            conns,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine behind this server.
    ///
    /// # Panics
    ///
    /// Panics if the server was built with [`Server::bind_service`] over
    /// a non-engine service; use [`Server::service`] there.
    pub fn engine(&self) -> &Arc<Engine> {
        self.engine
            .as_ref()
            .expect("server was bound with bind_service; it has no Engine")
    }

    /// The service behind this server.
    pub fn service(&self) -> &Arc<dyn Service> {
        &self.service
    }

    /// Stop accepting connections and shut the service down gracefully.
    /// In-flight connection threads finish their current request and exit
    /// when the peer closes.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Release);
        // Wake the blocking accept with a throw-away connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        self.service.shutdown();
    }

    /// Kill the node the way `kill -9` does: abort the service with no
    /// final drain and sever every live connection, so peers observe a
    /// connection reset rather than a graceful EOF. The whole-node fault
    /// schedules drive this.
    pub fn kill(mut self) {
        self.stop.store(true, Ordering::Release);
        self.service.abort();
        for conn in lock(&self.conns).drain(..) {
            let _ = conn.shutdown(NetShutdown::Both);
        }
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn serve_connection(mut stream: TcpStream, service: Arc<dyn Service>) {
    let _ = stream.set_nodelay(true);
    let telemetry = Arc::clone(service.telemetry());
    // Every connection thread gets its own flight-recorder ring; the
    // per-request spans it records carry the trace context, so a
    // `TraceDump` from this process stitches into the cluster-wide tree.
    let trace_ring = telemetry.recorder().register("conn");
    // In-flight requests opened by *this* connection — the admission
    // controller's per-connection cap counts against it. Handling is
    // serial per connection today, so it only exceeds 1 if that changes;
    // the cap is enforced here so it cannot regress silently.
    let conn_inflight = Arc::new(AtomicU64::new(0));
    loop {
        let frame = match WireFrame::read_from(&mut stream) {
            Ok(Some(frame)) => frame,
            // Clean EOF at a frame boundary: the peer is done.
            Ok(None) => return,
            // Garbage header, foreign magic, or a partial frame (the peer
            // died mid-write): count it, tell the peer if it is still
            // there, and close — framing cannot be resynchronized.
            Err(e) => {
                if is_frame_rejection(&e) {
                    service.record_rejected_frame();
                    let msg = Response::Error(format!("bad frame: {e}"));
                    let _ = WireFrame::from_value(RESPONSE_TAG, &msg).write_to(&mut stream);
                    let _ = stream.shutdown(NetShutdown::Both);
                }
                return;
            }
        };
        telemetry.add_bytes_in((FRAME_HEADER_LEN + frame.payload.len()) as u64);
        // The frame itself was well-formed; a payload that fails to decode
        // is a protocol error worth answering, and the connection lives on.
        let response = match decode_traced_request(&frame) {
            Ok((request, envelope)) => {
                let opcode = request.opcode();
                // Untraced (plain `REQUEST_TAG`) frames root a fresh
                // trace here, so every request belongs to exactly one
                // trace whether or not the caller propagates context.
                let ctx = envelope.ctx.unwrap_or_else(|| telemetry.root_context());
                // The envelope carries *remaining* budget; pin it to this
                // node's clock once so downstream checks are cheap.
                let abs_deadline = envelope
                    .deadline_micros
                    .map(|micros| Instant::now() + Duration::from_micros(micros));
                match admit(&service, opcode, &envelope, &conn_inflight) {
                    Err(shed) => shed,
                    Ok(_guard) => {
                        let span_id = telemetry.next_span(ctx);
                        let mut span = trace_ring.span("request");
                        span.field(FIELD_TRACE, ctx.trace_id);
                        span.field(FIELD_SPAN, span_id);
                        span.field(FIELD_PARENT, ctx.parent_span);
                        span.field("op", opcode as u64);
                        // Whatever the handler does downstream (scatter to
                        // backend nodes, engine events) parents under this
                        // span.
                        let child = TraceContext {
                            trace_id: ctx.trace_id,
                            parent_span: span_id,
                        };
                        let (response, micros) = timed(|| {
                            deadline::with_deadline(abs_deadline, || {
                                tracectx::with_current(child, || service.handle(request))
                            })
                        });
                        drop(span);
                        telemetry.record_request(opcode, micros);
                        response
                    }
                }
            }
            Err(e) => {
                service.record_rejected_frame();
                Response::Error(format!("bad request: {e}"))
            }
        };
        let out = WireFrame::from_value(RESPONSE_TAG, &response);
        telemetry.add_bytes_out((FRAME_HEADER_LEN + out.payload.len()) as u64);
        if out.write_to(&mut stream).is_err() {
            return;
        }
    }
}

/// Overload gate for one decoded request: a spent deadline budget or a
/// shed decision from the service's [`Admission`] controller answers a
/// typed [`Response::Overloaded`] instead of dispatching. Returns the
/// in-flight guard to hold for the duration of dispatch (`None` when the
/// service has no controller).
fn admit(
    service: &Arc<dyn Service>,
    opcode: u8,
    envelope: &RequestEnvelope,
    conn_inflight: &Arc<AtomicU64>,
) -> Result<Option<AdmitGuard>, Response> {
    let admission = service.admission();
    let retry_after_micros = admission
        .map(|a| a.retry_after_micros())
        .unwrap_or_else(|| crate::overload::OverloadConfig::default().retry_after_micros);
    // A request that arrives with its budget already spent is doomed no
    // matter how idle we are: the caller has stopped waiting.
    if envelope.deadline_micros == Some(0) {
        if let Some(a) = admission {
            a.note_deadline_expired();
        }
        return Err(Response::Overloaded { retry_after_micros });
    }
    match admission {
        None => Ok(None),
        Some(a) => match a.try_admit(opcode, conn_inflight) {
            Ok(guard) => Ok(Some(guard)),
            Err(_reason) => Err(Response::Overloaded { retry_after_micros }),
        },
    }
}

/// Frame-read failures that mean the *bytes* were bad (count as a rejected
/// frame), as opposed to ordinary socket teardown.
fn is_frame_rejection(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::InvalidData | io::ErrorKind::UnexpectedEof
    )
}

/// Serve one request against the engine. Public so tests and the CLI can
/// exercise the protocol without a socket.
pub fn dispatch(engine: &Engine, request: Request) -> Response {
    match request {
        Request::Ping => Response::Ok,
        Request::Ingest(items) => {
            // The engine's own ring notes the admission under the live
            // trace; worker/compactor spans for the same data then sit in
            // the same dump as this event's trace id.
            if let Some(ctx) = tracectx::current() {
                engine.telemetry().event(
                    "ingest_admit",
                    &[(FIELD_TRACE, ctx.trace_id), (FIELD_PARENT, ctx.parent_span)],
                );
            }
            match engine.ingest(items) {
                Ok(()) => Response::Ok,
                Err(e) => error_response(e),
            }
        }
        Request::Flush => match engine.flush() {
            Ok(()) => Response::Ok,
            Err(e) => error_response(e),
        },
        Request::Point(item) => match engine.snapshot().summary.point(item) {
            Some(count) => Response::Count(count),
            None => Response::Error(unsupported(engine, "point")),
        },
        Request::HeavyHitters(phi) => match check_phi(phi) {
            Err(e) => Response::Error(e),
            Ok(()) => match engine.snapshot().summary.heavy_hitters(phi) {
                Some(items) => Response::Items(items),
                None => Response::Error(unsupported(engine, "heavy-hitters")),
            },
        },
        Request::Rank(x) => match engine.snapshot().summary.rank(x) {
            Some(rank) => Response::Count(rank),
            None => Response::Error(unsupported(engine, "rank")),
        },
        Request::Quantile(phi) => match check_phi(phi) {
            Err(e) => Response::Error(e),
            Ok(()) => match engine.snapshot().summary.quantile(phi) {
                Some(value) => Response::Value(value),
                None => Response::Error(unsupported(engine, "quantile")),
            },
        },
        Request::Metrics => Response::Metrics(engine.metrics()),
        Request::Summary => Response::Summary(engine.snapshot().summary.encode()),
        Request::Telemetry => Response::Telemetry(engine.telemetry_snapshot()),
        Request::ClusterInfo | Request::NodeSummary(_) => {
            Response::Error("cluster queries are only answered by a coordinator node".to_string())
        }
        Request::RangeQuantile {
            start_micros,
            end_micros,
            phi,
        } => match check_phi(phi) {
            Err(e) => Response::Error(e),
            // Quantiles always come from the cube's hybrid-quantile
            // family, whatever the engine's global kind is.
            Ok(()) => {
                match engine.range_query(start_micros, end_micros, SummaryKind::HybridQuantile) {
                    Err(e) => Response::Error(e.to_string()),
                    Ok((meta, merged)) => Response::Range(RangeAnswer {
                        meta,
                        value: merged.as_ref().and_then(|s| s.quantile(phi)).flatten(),
                        items: Vec::new(),
                        summary: merged.map(|s| s.encode()).unwrap_or_default(),
                    }),
                }
            }
        },
        Request::RangeHeavyHitters {
            start_micros,
            end_micros,
            phi,
        } => match check_phi(phi) {
            Err(e) => Response::Error(e),
            // Heavy hitters come from the cube's MG family.
            Ok(()) => match engine.range_query(start_micros, end_micros, SummaryKind::Mg) {
                Err(e) => Response::Error(e.to_string()),
                Ok((meta, merged)) => Response::Range(RangeAnswer {
                    meta,
                    value: None,
                    items: merged
                        .as_ref()
                        .and_then(|s| s.heavy_hitters(phi))
                        .unwrap_or_default(),
                    summary: merged.map(|s| s.encode()).unwrap_or_default(),
                }),
            },
        },
        Request::SegmentInfo => match engine.segment_report() {
            Ok(report) => Response::Segments(report),
            Err(e) => Response::Error(e.to_string()),
        },
        Request::TraceDump => Response::Trace(engine.trace_dump()),
        Request::AccuracyReport => Response::Accuracy(engine.accuracy_audit()),
    }
}

/// φ parameters arrive as raw `f64` bits off the wire; reject NaN,
/// infinities and out-of-range values before they reach a summary.
pub fn check_phi(phi: f64) -> Result<(), String> {
    if phi.is_finite() && (0.0..=1.0).contains(&phi) {
        Ok(())
    } else {
        Err(format!("phi must be a finite value in [0, 1], got {phi}"))
    }
}

/// Map a handler error to its wire response, preserving the typed
/// `Overloaded` shed so clients see a retry hint, not an opaque string.
fn error_response(e: ServiceError) -> Response {
    match e {
        ServiceError::Overloaded { retry_after_micros } => {
            Response::Overloaded { retry_after_micros }
        }
        e => Response::Error(e.to_string()),
    }
}

fn unsupported(engine: &Engine, query: &str) -> String {
    format!(
        "{query} queries are not supported by a {} engine",
        engine.config().kind.label()
    )
}

/// Transport behavior of a [`Client`]: per-request deadline, connect
/// deadline, and how transient failures are retried.
#[derive(Debug, Clone)]
pub struct ClientOptions {
    /// Deadline for establishing a TCP connection.
    pub connect_timeout: Duration,
    /// Per-request deadline: if no response byte arrives within this
    /// window, the call fails with [`ServiceError::Timeout`].
    pub read_timeout: Duration,
    /// Extra attempts after the first failure (transient failures of
    /// idempotent requests only, unless `retry_non_idempotent`).
    pub retries: u32,
    /// Backoff before the first retry; doubles on each subsequent one.
    pub backoff: Duration,
    /// Also retry non-idempotent requests ([`Request::Ingest`]). Off by
    /// default: a retried ingest whose first attempt *was* applied
    /// double-counts its batch.
    pub retry_non_idempotent: bool,
    /// End-to-end budget for one logical call. When set, every request
    /// travels in a deadline-bearing envelope (the server sheds it once
    /// the budget is spent) and the retry loop stops sleeping when the
    /// budget runs out — a deadline caps retry wall-time, not just the
    /// individual socket reads.
    pub deadline: Option<Duration>,
    /// Seed for the full-jitter backoff RNG: each retry sleeps a uniform
    /// draw from `[0, backoff·2^attempt]` so a fleet of shedding clients
    /// decorrelates instead of thundering back in lockstep. Same seed,
    /// same sleep schedule — tests replay deterministically.
    pub jitter_seed: u64,
}

impl Default for ClientOptions {
    fn default() -> Self {
        ClientOptions {
            connect_timeout: Duration::from_secs(10),
            read_timeout: Duration::from_secs(30),
            retries: 3,
            backoff: Duration::from_millis(25),
            retry_non_idempotent: false,
            deadline: None,
            jitter_seed: 0x5EED_BACC_0FF5,
        }
    }
}

/// Blocking client speaking the framed request/response protocol, with
/// timeouts and seeded-backoff retries (see [`ClientOptions`]).
pub struct Client {
    addrs: Vec<SocketAddr>,
    opts: ClientOptions,
    stream: Option<TcpStream>,
    retries_performed: u64,
    /// xorshift64 state behind the full-jitter draws (never zero).
    rng: u64,
    /// Request-frame scratch reused across [`Client::ingest_slice`] calls
    /// so a streaming client serializes every batch into the same buffer.
    scratch: Vec<u8>,
    /// Response-payload scratch reused across calls: the read side of the
    /// round-trip stops allocating once it has seen the largest response.
    resp: Vec<u8>,
}

impl Client {
    /// Connect to a server with default [`ClientOptions`].
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ServiceError> {
        Self::connect_with(addr, ClientOptions::default())
    }

    /// Connect with explicit transport options.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        opts: ClientOptions,
    ) -> Result<Client, ServiceError> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        if addrs.is_empty() {
            return Err(ServiceError::Io {
                kind: io::ErrorKind::AddrNotAvailable,
                detail: "address resolved to nothing".to_string(),
            });
        }
        let mut client = Client {
            addrs,
            rng: opts.jitter_seed | 1, // xorshift must not start at 0
            opts,
            stream: None,
            retries_performed: 0,
            scratch: Vec::new(),
            resp: Vec::new(),
        };
        client.reconnect()?;
        Ok(client)
    }

    /// Transport-level retries performed so far (for tests and reports).
    pub fn retries_performed(&self) -> u64 {
        self.retries_performed
    }

    fn reconnect(&mut self) -> Result<(), ServiceError> {
        self.stream = None;
        let mut last: Option<io::Error> = None;
        for addr in &self.addrs {
            match TcpStream::connect_timeout(addr, self.opts.connect_timeout) {
                Ok(stream) => {
                    stream.set_nodelay(true)?;
                    stream.set_read_timeout(Some(self.opts.read_timeout))?;
                    self.stream = Some(stream);
                    return Ok(());
                }
                Err(e) => last = Some(e),
            }
        }
        Err(last.map(ServiceError::from).unwrap_or(ServiceError::Io {
            kind: io::ErrorKind::AddrNotAvailable,
            detail: "no address to connect to".to_string(),
        }))
    }

    /// One wire round-trip on the current connection. `frame` is the
    /// complete, already-serialized request frame (header + payload).
    fn call_once(&mut self, frame: &[u8]) -> Result<Response, ServiceError> {
        let timeout_ms = self.opts.read_timeout.as_millis() as u64;
        let stream = self.stream.as_mut().ok_or_else(|| ServiceError::Io {
            kind: io::ErrorKind::NotConnected,
            detail: "connection is down".to_string(),
        })?;
        stream.write_all(frame).map_err(ServiceError::from)?;
        let tag = match WireFrame::read_from_into(stream, &mut self.resp) {
            Ok(Some(tag)) => tag,
            // The server closed the connection between our request and its
            // response: a clean, typed EOF instead of a hang.
            Ok(None) => {
                return Err(ServiceError::Io {
                    kind: io::ErrorKind::UnexpectedEof,
                    detail: "server closed the connection".to_string(),
                })
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Err(ServiceError::Timeout { millis: timeout_ms })
            }
            Err(e) => return Err(ServiceError::from(e)),
        };
        if tag != RESPONSE_TAG {
            return Err(ServiceError::Wire(ms_core::WireError::BadTag(tag)));
        }
        Response::decode(&self.resp).map_err(ServiceError::from)
    }

    /// Send one request and wait for its response, retrying transient
    /// transport failures with exponential backoff when safe (see
    /// [`ClientOptions`]). After any failure the connection is torn down
    /// and re-established, so a late response to a timed-out request can
    /// never be mistaken for the answer to the next one.
    pub fn call(&mut self, request: &Request) -> Result<Response, ServiceError> {
        let frame = match self.opts.deadline {
            Some(budget) => deadline_frame(None, budget.as_micros() as u64, request).to_bytes(),
            None => WireFrame::from_value(REQUEST_TAG, request).to_bytes(),
        };
        self.call_frame(&frame, request.is_idempotent())
    }

    /// Like [`Client::call`], but the request travels in a
    /// `TRACED_REQUEST_TAG` envelope carrying `ctx` — the server adopts
    /// the trace instead of rooting a fresh one. The coordinator uses
    /// this for every scatter leg; tooling can use it to follow one
    /// request across the cluster.
    pub fn call_traced(
        &mut self,
        ctx: TraceContext,
        request: &Request,
    ) -> Result<Response, ServiceError> {
        let frame = match self.opts.deadline {
            Some(budget) => {
                deadline_frame(Some(ctx), budget.as_micros() as u64, request).to_bytes()
            }
            None => traced_frame(ctx, request).to_bytes(),
        };
        self.call_frame(&frame, request.is_idempotent())
    }

    /// [`Client::call_traced`] with an explicit remaining-budget override:
    /// the coordinator uses this to forward its *decremented* deadline to
    /// each scatter leg rather than this client's static option.
    pub fn call_with_deadline(
        &mut self,
        ctx: TraceContext,
        deadline_micros: u64,
        request: &Request,
    ) -> Result<Response, ServiceError> {
        let frame = deadline_frame(Some(ctx), deadline_micros, request).to_bytes();
        self.call_frame(&frame, request.is_idempotent())
    }

    /// Pull the server's flight-recorder rings (trace spans and events).
    pub fn trace_dump(&mut self) -> Result<TraceDumpReport, ServiceError> {
        match self.call(&Request::TraceDump)? {
            Response::Trace(report) => Ok(report),
            other => Err(protocol_error(other)),
        }
    }

    /// Fetch the accuracy self-audit: merge lineage, the `ε·n` envelope,
    /// and the observed error against the audit plane's ground truth.
    pub fn accuracy(&mut self) -> Result<AccuracyAudit, ServiceError> {
        match self.call(&Request::AccuracyReport)? {
            Response::Accuracy(report) => Ok(report),
            other => Err(protocol_error(other)),
        }
    }

    /// The retry loop behind [`Client::call`], operating on a serialized
    /// frame so callers can bring their own (reused) encode buffer.
    fn call_frame(&mut self, frame: &[u8], idempotent: bool) -> Result<Response, ServiceError> {
        let start = Instant::now();
        let mut attempt = 0u32;
        loop {
            let result = self.call_once(frame);
            match result {
                Ok(response) => return Ok(response),
                Err(e) => {
                    self.stream = None; // never reuse a connection that failed
                    let retryable =
                        e.is_transient() && (idempotent || self.opts.retry_non_idempotent);
                    if !retryable || attempt >= self.opts.retries {
                        return Err(e);
                    }
                    // Full jitter: uniform in [0, backoff·2^attempt]. A
                    // deadline caps the sleep — and once the budget is
                    // spent, retrying is lying to the caller, so stop.
                    let ceiling = self.opts.backoff.saturating_mul(1 << attempt.min(16));
                    let mut pause = self.jitter(ceiling);
                    if let Some(budget) = self.opts.deadline {
                        let left = budget.saturating_sub(start.elapsed());
                        if left.is_zero() {
                            return Err(e);
                        }
                        pause = pause.min(left);
                    }
                    std::thread::sleep(pause);
                    attempt += 1;
                    self.retries_performed += 1;
                    if let Err(reconnect_err) = self.reconnect() {
                        if attempt >= self.opts.retries {
                            return Err(reconnect_err);
                        }
                    }
                }
            }
        }
    }

    /// One full-jitter draw: uniform in `[0, ceiling]`, from the seeded
    /// xorshift64 stream (`ClientOptions::jitter_seed`).
    fn jitter(&mut self, ceiling: Duration) -> Duration {
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        let span = ceiling.as_nanos() as u64;
        if span == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(self.rng % (span + 1))
    }

    /// Ingest a batch, erroring on a server-side failure.
    pub fn ingest(&mut self, items: Vec<u64>) -> Result<(), ServiceError> {
        match self.call(&Request::Ingest(items))? {
            Response::Ok => Ok(()),
            other => Err(protocol_error(other)),
        }
    }

    /// Ingest a borrowed batch without allocating on the send path: the
    /// request frame is serialized straight into a scratch buffer owned
    /// by this client and reused across calls. Byte-identical on the
    /// wire to [`Client::ingest`].
    pub fn ingest_slice(&mut self, items: &[u64]) -> Result<(), ServiceError> {
        let mut frame = std::mem::take(&mut self.scratch);
        frame.clear();
        match self.opts.deadline {
            // Hand-encode the same sentinel-0 deadline envelope that
            // `deadline_frame` builds (no trace context).
            Some(budget) => encode_frame_into(&mut frame, TRACED_REQUEST_TAG, |out| {
                out.push(0);
                0u64.encode_into(out);
                0u64.encode_into(out);
                (budget.as_micros() as u64).encode_into(out);
                out.push(Request::Ingest(Vec::new()).opcode());
                encode_u64_slice_into(out, items);
            }),
            None => encode_frame_into(&mut frame, REQUEST_TAG, |out| {
                out.push(Request::Ingest(Vec::new()).opcode());
                encode_u64_slice_into(out, items);
            }),
        }
        let result = self.call_frame(&frame, false);
        self.scratch = frame;
        match result? {
            Response::Ok => Ok(()),
            other => Err(protocol_error(other)),
        }
    }

    /// [`Client::ingest_slice`] inside a traced envelope: same reused
    /// scratch buffer, but the frame carries `ctx` so the receiving
    /// node's request span joins the caller's trace.
    pub fn ingest_slice_traced(
        &mut self,
        ctx: TraceContext,
        items: &[u64],
    ) -> Result<(), ServiceError> {
        let mut frame = std::mem::take(&mut self.scratch);
        frame.clear();
        encode_frame_into(&mut frame, TRACED_REQUEST_TAG, |out| {
            match self.opts.deadline {
                Some(budget) => {
                    out.push(0);
                    ctx.trace_id.encode_into(out);
                    ctx.parent_span.encode_into(out);
                    (budget.as_micros() as u64).encode_into(out);
                }
                None => ctx.encode_into(out),
            }
            out.push(Request::Ingest(Vec::new()).opcode());
            encode_u64_slice_into(out, items);
        });
        let result = self.call_frame(&frame, false);
        self.scratch = frame;
        match result? {
            Response::Ok => Ok(()),
            other => Err(protocol_error(other)),
        }
    }

    /// [`Client::ingest_slice_traced`] with an explicit remaining-budget
    /// override, mirroring [`Client::call_with_deadline`]: the
    /// coordinator forwards its decremented deadline on ingest legs. A
    /// zero `ctx` means "no trace" on the wire.
    pub fn ingest_slice_deadline(
        &mut self,
        ctx: TraceContext,
        deadline_micros: u64,
        items: &[u64],
    ) -> Result<(), ServiceError> {
        let mut frame = std::mem::take(&mut self.scratch);
        frame.clear();
        encode_frame_into(&mut frame, TRACED_REQUEST_TAG, |out| {
            out.push(0);
            ctx.trace_id.encode_into(out);
            ctx.parent_span.encode_into(out);
            deadline_micros.encode_into(out);
            out.push(Request::Ingest(Vec::new()).opcode());
            encode_u64_slice_into(out, items);
        });
        let result = self.call_frame(&frame, false);
        self.scratch = frame;
        match result? {
            Response::Ok => Ok(()),
            other => Err(protocol_error(other)),
        }
    }

    /// Flush the engine so later queries see all prior ingests.
    pub fn flush(&mut self) -> Result<(), ServiceError> {
        match self.call(&Request::Flush)? {
            Response::Ok => Ok(()),
            other => Err(protocol_error(other)),
        }
    }

    /// Fetch engine metrics.
    pub fn metrics(&mut self) -> Result<MetricsReport, ServiceError> {
        match self.call(&Request::Metrics)? {
            Response::Metrics(m) => Ok(m),
            other => Err(protocol_error(other)),
        }
    }

    /// Fetch the full telemetry registry snapshot (latency histograms,
    /// queue-depth gauges, byte counters).
    pub fn telemetry(&mut self) -> Result<RegistrySnapshot, ServiceError> {
        match self.call(&Request::Telemetry)? {
            Response::Telemetry(snapshot) => Ok(snapshot),
            other => Err(protocol_error(other)),
        }
    }

    /// Estimated φ-quantile over the time window `[start, end]` micros.
    pub fn range_quantile(
        &mut self,
        start_micros: u64,
        end_micros: u64,
        phi: f64,
    ) -> Result<RangeAnswer, ServiceError> {
        match self.call(&Request::RangeQuantile {
            start_micros,
            end_micros,
            phi,
        })? {
            Response::Range(answer) => Ok(answer),
            other => Err(protocol_error(other)),
        }
    }

    /// Heavy hitters over the time window `[start, end]` micros.
    pub fn range_heavy_hitters(
        &mut self,
        start_micros: u64,
        end_micros: u64,
        phi: f64,
    ) -> Result<RangeAnswer, ServiceError> {
        match self.call(&Request::RangeHeavyHitters {
            start_micros,
            end_micros,
            phi,
        })? {
            Response::Range(answer) => Ok(answer),
            other => Err(protocol_error(other)),
        }
    }

    /// Fetch the segment cube's index.
    pub fn segments(&mut self) -> Result<SegmentReport, ServiceError> {
        match self.call(&Request::SegmentInfo)? {
            Response::Segments(report) => Ok(report),
            other => Err(protocol_error(other)),
        }
    }

    /// Write `bytes` raw onto the connection — fault-injection tooling
    /// uses this to deliver deliberately corrupt frames. Normal callers
    /// never need it.
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<(), ServiceError> {
        let stream = self.stream.as_mut().ok_or_else(|| ServiceError::Io {
            kind: io::ErrorKind::NotConnected,
            detail: "connection is down".to_string(),
        })?;
        stream.write_all(bytes)?;
        stream.flush()?;
        Ok(())
    }

    /// Read one response frame (after [`Client::send_raw`]).
    pub fn read_response(&mut self) -> Result<Response, ServiceError> {
        let timeout_ms = self.opts.read_timeout.as_millis() as u64;
        let stream = self.stream.as_mut().ok_or_else(|| ServiceError::Io {
            kind: io::ErrorKind::NotConnected,
            detail: "connection is down".to_string(),
        })?;
        match WireFrame::read_from(stream) {
            Ok(Some(frame)) => frame.value::<Response>().map_err(ServiceError::from),
            Ok(None) => Err(ServiceError::Io {
                kind: io::ErrorKind::UnexpectedEof,
                detail: "server closed the connection".to_string(),
            }),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                Err(ServiceError::Timeout { millis: timeout_ms })
            }
            Err(e) => Err(ServiceError::from(e)),
        }
    }

    /// Drop the connection without a clean shutdown (simulates a client
    /// that vanished mid-epoch).
    pub fn abandon(mut self) {
        if let Some(stream) = self.stream.take() {
            let _ = stream.shutdown(NetShutdown::Both);
        }
    }
}

fn protocol_error(response: Response) -> ServiceError {
    match response {
        Response::Error(m) => ServiceError::Protocol(m),
        // A shed stays typed end to end: callers see the transient
        // `Overloaded` error (with its retry hint) and can back off.
        Response::Overloaded { retry_after_micros } => {
            ServiceError::Overloaded { retry_after_micros }
        }
        other => ServiceError::Protocol(format!("unexpected response {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ServiceConfig, SummaryKind};
    use crate::summary::ShardSummary;
    use ms_core::Summary;

    fn mg_server() -> Server {
        let engine = Engine::start(ServiceConfig::new(SummaryKind::Mg, 0.02).shards(2)).unwrap();
        Server::bind(engine, "127.0.0.1:0").unwrap()
    }

    fn fast_options() -> ClientOptions {
        ClientOptions {
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_millis(500),
            retries: 2,
            backoff: Duration::from_millis(5),
            ..ClientOptions::default()
        }
    }

    #[test]
    fn tcp_ingest_flush_query() {
        let server = mg_server();
        let mut client = Client::connect(server.local_addr()).unwrap();
        assert_eq!(client.call(&Request::Ping).unwrap(), Response::Ok);
        for _ in 0..20 {
            client.ingest((0..100).map(|v| v % 5).collect()).unwrap();
        }
        client.flush().unwrap();
        match client.call(&Request::HeavyHitters(0.1)).unwrap() {
            Response::Items(items) => {
                assert_eq!(items.len(), 5);
            }
            other => panic!("unexpected {other:?}"),
        }
        let m = client.metrics().unwrap();
        assert_eq!(m.updates, 2000);
        assert_eq!(m.snapshot_weight, 2000);
        assert_eq!(m.frames_rejected, 0);
        server.stop();
    }

    #[test]
    fn ingest_slice_matches_owned_ingest_on_the_wire() {
        let server = mg_server();
        let mut client = Client::connect(server.local_addr()).unwrap();
        let batch: Vec<u64> = (0..100).map(|v| v % 5).collect();
        for _ in 0..10 {
            client.ingest_slice(&batch).unwrap();
        }
        // The scratch frame is reused: same buffer, same bytes each call.
        assert!(client.scratch.capacity() > 0);
        client.flush().unwrap();
        let m = client.metrics().unwrap();
        assert_eq!(m.updates, 1000);
        assert_eq!(m.snapshot_weight, 1000);
        assert_eq!(m.frames_rejected, 0);
        server.stop();
    }

    #[test]
    fn summary_request_ships_decodable_codec_bytes() {
        let server = mg_server();
        let mut client = Client::connect(server.local_addr()).unwrap();
        client.ingest(vec![9; 500]).unwrap();
        client.flush().unwrap();
        let bytes = match client.call(&Request::Summary).unwrap() {
            Response::Summary(bytes) => bytes,
            other => panic!("unexpected {other:?}"),
        };
        let summary = ShardSummary::decode(&bytes).unwrap();
        assert_eq!(summary.total_weight(), 500);
        assert_eq!(summary.point(9), Some(500));
        server.stop();
    }

    #[test]
    fn unsupported_queries_return_protocol_errors() {
        let server = mg_server();
        let mut client = Client::connect(server.local_addr()).unwrap();
        match client.call(&Request::Rank(3)).unwrap() {
            Response::Error(msg) => assert!(msg.contains("rank")),
            other => panic!("unexpected {other:?}"),
        }
        server.stop();
    }

    #[test]
    fn nan_and_out_of_range_phi_are_protocol_errors() {
        let server = mg_server();
        let mut client = Client::connect(server.local_addr()).unwrap();
        for bad in [f64::NAN, f64::INFINITY, -0.5, 1.5] {
            match client.call(&Request::HeavyHitters(bad)).unwrap() {
                Response::Error(msg) => assert!(msg.contains("phi"), "{msg}"),
                other => panic!("unexpected {other:?} for phi {bad}"),
            }
            match client.call(&Request::Quantile(bad)).unwrap() {
                Response::Error(msg) => assert!(msg.contains("phi"), "{msg}"),
                other => panic!("unexpected {other:?} for phi {bad}"),
            }
        }
        server.stop();
    }

    #[test]
    fn malformed_payload_gets_error_response_and_connection_survives() {
        let server = mg_server();
        let mut client = Client::connect_with(server.local_addr(), fast_options()).unwrap();
        // A well-framed payload with an unknown opcode.
        let bad = WireFrame {
            tag: REQUEST_TAG,
            payload: vec![99],
        };
        client.send_raw(&bad.to_bytes()).unwrap();
        match client.read_response().unwrap() {
            Response::Error(msg) => assert!(msg.contains("bad request"), "{msg}"),
            other => panic!("unexpected {other:?}"),
        }
        // Same connection still serves good requests.
        assert_eq!(client.call(&Request::Ping).unwrap(), Response::Ok);
        assert_eq!(server.engine().metrics().frames_rejected, 1);
        server.stop();
    }

    #[test]
    fn bad_magic_is_rejected_and_counted() {
        let server = mg_server();
        let mut client = Client::connect_with(server.local_addr(), fast_options()).unwrap();
        client.send_raw(b"XXGARBAGE").unwrap();
        // The server answers with an error frame and closes.
        match client.read_response() {
            Ok(Response::Error(msg)) => assert!(msg.contains("bad frame"), "{msg}"),
            Ok(other) => panic!("unexpected {other:?}"),
            // Depending on timing the close can beat the error frame.
            Err(ServiceError::Io { .. }) => {}
            Err(other) => panic!("unexpected {other:?}"),
        }
        // Engine unharmed; a fresh connection works.
        let mut fresh = Client::connect(server.local_addr()).unwrap();
        assert_eq!(fresh.call(&Request::Ping).unwrap(), Response::Ok);
        assert!(server.engine().metrics().frames_rejected >= 1);
        server.stop();
    }

    #[test]
    fn client_times_out_instead_of_hanging() {
        // A listener that accepts and then never answers. The thread is
        // deliberately not joined: it blocks in accept() until the test
        // process exits.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            let mut kept = Vec::new();
            while let Ok((stream, _)) = listener.accept() {
                kept.push(stream);
            }
        });
        let opts = ClientOptions {
            read_timeout: Duration::from_millis(100),
            retries: 1,
            backoff: Duration::from_millis(5),
            ..ClientOptions::default()
        };
        let mut client = Client::connect_with(addr, opts).unwrap();
        let start = std::time::Instant::now();
        let err = client.call(&Request::Ping).unwrap_err();
        assert!(matches!(err, ServiceError::Timeout { .. }), "{err:?}");
        // One original attempt + one retry, each bounded by the timeout.
        assert!(start.elapsed() < Duration::from_secs(2));
        assert_eq!(client.retries_performed(), 1);
    }

    #[test]
    fn client_surfaces_clean_eof_when_server_goes_away() {
        // Accept and immediately close every connection; not joined — the
        // thread blocks in accept() until the test process exits.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            while let Ok((stream, _)) = listener.accept() {
                drop(stream);
            }
        });
        let opts = ClientOptions {
            read_timeout: Duration::from_millis(200),
            retries: 1,
            backoff: Duration::from_millis(5),
            ..ClientOptions::default()
        };
        let mut client = Client::connect_with(addr, opts).unwrap();
        let err = client.call(&Request::Ping).unwrap_err();
        match err {
            ServiceError::Io { kind, .. } => {
                assert!(
                    kind == io::ErrorKind::UnexpectedEof
                        || kind == io::ErrorKind::ConnectionReset
                        || kind == io::ErrorKind::BrokenPipe,
                    "{kind:?}"
                );
            }
            other => panic!("expected io error, got {other:?}"),
        }
    }

    #[test]
    fn retry_recovers_when_server_comes_back() {
        // First connection dies mid-request; the retry lands on a live
        // server and succeeds.
        let server = mg_server();
        let addr = server.local_addr();
        let opts = ClientOptions {
            read_timeout: Duration::from_millis(300),
            retries: 3,
            backoff: Duration::from_millis(5),
            ..ClientOptions::default()
        };
        let mut client = Client::connect_with(addr, opts).unwrap();
        // Poison the current connection from our side so the next write
        // fails, forcing the retry path.
        if let Some(s) = client.stream.as_ref() {
            let _ = s.shutdown(NetShutdown::Both);
        }
        assert_eq!(client.call(&Request::Ping).unwrap(), Response::Ok);
        assert!(client.retries_performed() >= 1);
        server.stop();
    }

    #[test]
    fn telemetry_opcode_serves_live_histograms() {
        let server = mg_server();
        let mut client = Client::connect(server.local_addr()).unwrap();
        for _ in 0..50 {
            client.ingest((0..100).collect()).unwrap();
        }
        client.flush().unwrap();
        let snap = client.telemetry().unwrap();
        // Per-opcode request latency: 50 ingests and 1 flush were served.
        let ingest = snap.histogram("request_micros{op=\"ingest\"}").unwrap();
        assert_eq!(ingest.count, 50);
        assert_eq!(
            snap.histogram("request_micros{op=\"flush\"}")
                .unwrap()
                .count,
            1
        );
        // Per-shard ingest-batch latency across shards covers every batch.
        let absorbed: u64 = (0..server.engine().config().shards)
            .filter_map(|s| snap.histogram(&format!("ingest_batch_micros{{shard=\"{s}\"}}")))
            .map(|h| h.count)
            .sum();
        assert_eq!(absorbed, 50);
        // Engine counters are folded in; queue-depth gauges exist.
        assert_eq!(snap.counter("updates_total"), Some(5000));
        assert_eq!(snap.counter("shards_lost_total"), Some(0));
        assert!(snap.gauge("queue_depth{shard=\"0\"}").is_some());
        // Byte accounting saw our frames in both directions.
        assert!(snap.counter("server_bytes_in_total").unwrap() > 0);
        assert!(snap.counter("server_bytes_out_total").unwrap() > 0);
        server.stop();
    }

    #[test]
    fn telemetry_disabled_serves_empty_histograms() {
        let engine = Engine::start(
            ServiceConfig::new(SummaryKind::Mg, 0.02)
                .shards(2)
                .telemetry(false),
        )
        .unwrap();
        let server = Server::bind(engine, "127.0.0.1:0").unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        client.ingest(vec![1; 100]).unwrap();
        client.flush().unwrap();
        let snap = client.telemetry().unwrap();
        // The snapshot stays well-formed but records nothing...
        let ingest = snap.histogram("request_micros{op=\"ingest\"}").unwrap();
        assert_eq!(ingest.count, 0);
        assert_eq!(snap.counter("server_bytes_in_total"), Some(0));
        // ...while the engine's own counters still work.
        assert_eq!(snap.counter("updates_total"), Some(100));
        server.stop();
    }

    #[test]
    fn traced_requests_adopt_context_and_plain_requests_root_fresh_traces() {
        let server = mg_server();
        let mut client = Client::connect(server.local_addr()).unwrap();
        let ctx = TraceContext {
            trace_id: 0xABCD_EF01,
            parent_span: 7,
        };
        assert_eq!(
            client.call_traced(ctx, &Request::Ping).unwrap(),
            Response::Ok
        );
        client.ingest(vec![3; 100]).unwrap();
        client.flush().unwrap();
        let report = client.trace_dump().unwrap();
        assert!(report.ring_capacity > 0);
        let conn: Vec<_> = report
            .threads
            .iter()
            .filter(|t| t.label == "conn")
            .collect();
        assert!(!conn.is_empty(), "connection threads register trace rings");
        let request_spans: Vec<_> = conn
            .iter()
            .flat_map(|t| &t.events)
            .filter(|e| e.name == "request")
            .collect();
        // Ping + ingest + flush (+ the trace_dump request itself may or
        // may not have landed in the ring before the dump was cut).
        assert!(request_spans.len() >= 3, "{}", request_spans.len());
        let field = |e: &crate::protocol::TraceEventRecord, k: &str| {
            e.fields.iter().find(|(n, _)| n == k).map(|&(_, v)| v)
        };
        let adopted = request_spans
            .iter()
            .find(|e| field(e, "trace") == Some(0xABCD_EF01))
            .expect("the traced ping adopted the caller's trace id");
        assert_eq!(field(adopted, "parent"), Some(7));
        assert!(field(adopted, "span").unwrap() != 0);
        // The plain requests each rooted a distinct fresh trace.
        let roots: std::collections::BTreeSet<u64> = request_spans
            .iter()
            .filter(|e| field(e, "parent") == Some(0))
            .filter_map(|e| field(e, "trace"))
            .collect();
        assert!(roots.len() >= 2);
        // The engine ring saw the ingest admission under some trace.
        let admits: Vec<_> = report
            .threads
            .iter()
            .flat_map(|t| &t.events)
            .filter(|e| e.name == "ingest_admit")
            .collect();
        assert_eq!(admits.len(), 1);
        assert!(field(admits[0], "trace").unwrap() != 0);
        // The whole report stitches: every request span is a root or a
        // child in the forest.
        let spans = tracectx::stitch(&[("node".to_string(), report.clone())]);
        assert!(spans.iter().any(|s| s.trace_id == 0xABCD_EF01));
        server.stop();
    }

    #[test]
    fn accuracy_report_travels_the_wire() {
        let engine = Engine::start(
            ServiceConfig::new(SummaryKind::Mg, 0.02)
                .shards(2)
                .audit(true),
        )
        .unwrap();
        let server = Server::bind(engine, "127.0.0.1:0").unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        client.ingest((0..1000).map(|v| v % 50).collect()).unwrap();
        client.flush().unwrap();
        let audit = client.accuracy().unwrap();
        assert_eq!(audit.kind, "mg");
        assert_eq!(audit.weight, 1000);
        assert_eq!(audit.audit_weight, 1000);
        assert!(audit.within_bound);
        assert!(audit.merges >= 1);
        server.stop();
    }

    #[test]
    fn stop_shuts_engine_down() {
        let server = mg_server();
        let engine = Arc::clone(server.engine());
        server.stop();
        assert!(matches!(
            engine.ingest(vec![1]),
            Err(ServiceError::Shutdown)
        ));
    }
}

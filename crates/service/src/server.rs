//! Blocking TCP server and client for the engine, framed with
//! [`WireFrame`] (`std::net` only — one thread per connection, graceful
//! shutdown via a stop flag plus a wake-up connection).

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use ms_core::{Wire, WireFrame};

use crate::engine::{Engine, MetricsReport};
use crate::protocol::{Request, Response, REQUEST_TAG, RESPONSE_TAG};

/// A running TCP front-end over an [`Engine`].
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    engine: Arc<Engine>,
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and start
    /// accepting connections, each served by its own thread.
    pub fn bind(engine: Arc<Engine>, addr: impl ToSocketAddrs) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let accept_engine = Arc::clone(&engine);
        let accept_handle = std::thread::Builder::new()
            .name("ms-accept".to_string())
            .spawn(move || {
                for conn in listener.incoming() {
                    if accept_stop.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let engine = Arc::clone(&accept_engine);
                    let _ = std::thread::Builder::new()
                        .name("ms-conn".to_string())
                        .spawn(move || serve_connection(stream, engine));
                }
            })?;
        Ok(Server {
            addr,
            stop,
            accept_handle: Some(accept_handle),
            engine,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine behind this server.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Stop accepting connections and shut the engine down. In-flight
    /// connection threads finish their current request and exit when the
    /// peer closes.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Release);
        // Wake the blocking accept with a throw-away connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        self.engine.shutdown();
    }
}

fn serve_connection(mut stream: TcpStream, engine: Arc<Engine>) {
    let _ = stream.set_nodelay(true);
    loop {
        let frame = match WireFrame::read_from(&mut stream) {
            Ok(Some(frame)) => frame,
            // Clean EOF or a broken peer: either way this connection is done.
            Ok(None) | Err(_) => return,
        };
        let response = match decode_request(&frame) {
            Ok(request) => dispatch(&engine, request),
            Err(e) => Response::Error(format!("bad request: {e:?}")),
        };
        let out = WireFrame::from_value(RESPONSE_TAG, &response);
        if out.write_to(&mut stream).is_err() {
            return;
        }
    }
}

fn decode_request(frame: &WireFrame) -> Result<Request, ms_core::WireError> {
    if frame.tag != REQUEST_TAG {
        return Err(ms_core::WireError::BadTag(frame.tag));
    }
    frame.value::<Request>()
}

/// Serve one request against the engine. Public so tests and the CLI can
/// exercise the protocol without a socket.
pub fn dispatch(engine: &Engine, request: Request) -> Response {
    match request {
        Request::Ping => Response::Ok,
        Request::Ingest(items) => {
            if engine.ingest(items) {
                Response::Ok
            } else {
                Response::Error("engine is shut down".into())
            }
        }
        Request::Flush => {
            engine.flush();
            Response::Ok
        }
        Request::Point(item) => match engine.snapshot().summary.point(item) {
            Some(count) => Response::Count(count),
            None => Response::Error(unsupported(engine, "point")),
        },
        Request::HeavyHitters(phi) => match engine.snapshot().summary.heavy_hitters(phi) {
            Some(items) => Response::Items(items),
            None => Response::Error(unsupported(engine, "heavy-hitters")),
        },
        Request::Rank(x) => match engine.snapshot().summary.rank(x) {
            Some(rank) => Response::Count(rank),
            None => Response::Error(unsupported(engine, "rank")),
        },
        Request::Quantile(phi) => match engine.snapshot().summary.quantile(phi) {
            Some(value) => Response::Value(value),
            None => Response::Error(unsupported(engine, "quantile")),
        },
        Request::Metrics => Response::Metrics(engine.metrics()),
        Request::Summary => Response::Summary(engine.snapshot().summary.encode()),
    }
}

fn unsupported(engine: &Engine, query: &str) -> String {
    format!(
        "{query} queries are not supported by a {} engine",
        engine.config().kind.label()
    )
}

/// Blocking client speaking the framed request/response protocol.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Send one request and wait for its response.
    pub fn call(&mut self, request: &Request) -> io::Result<Response> {
        WireFrame::from_value(REQUEST_TAG, request).write_to(&mut self.stream)?;
        let frame = WireFrame::read_from(&mut self.stream)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server closed"))?;
        if frame.tag != RESPONSE_TAG {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected frame tag {:#x}", frame.tag),
            ));
        }
        frame
            .value::<Response>()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e:?}")))
    }

    /// Ingest a batch, erroring on a server-side failure.
    pub fn ingest(&mut self, items: Vec<u64>) -> io::Result<()> {
        match self.call(&Request::Ingest(items))? {
            Response::Ok => Ok(()),
            other => Err(protocol_error(other)),
        }
    }

    /// Flush the engine so later queries see all prior ingests.
    pub fn flush(&mut self) -> io::Result<()> {
        match self.call(&Request::Flush)? {
            Response::Ok => Ok(()),
            other => Err(protocol_error(other)),
        }
    }

    /// Fetch engine metrics.
    pub fn metrics(&mut self) -> io::Result<MetricsReport> {
        match self.call(&Request::Metrics)? {
            Response::Metrics(m) => Ok(m),
            other => Err(protocol_error(other)),
        }
    }
}

fn protocol_error(response: Response) -> io::Error {
    let msg = match response {
        Response::Error(m) => m,
        other => format!("unexpected response {other:?}"),
    };
    io::Error::other(msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ServiceConfig, SummaryKind};
    use crate::summary::ShardSummary;
    use ms_core::Summary;

    fn mg_server() -> Server {
        let engine = Engine::start(ServiceConfig::new(SummaryKind::Mg, 0.02).shards(2)).unwrap();
        Server::bind(engine, "127.0.0.1:0").unwrap()
    }

    #[test]
    fn tcp_ingest_flush_query() {
        let server = mg_server();
        let mut client = Client::connect(server.local_addr()).unwrap();
        assert_eq!(client.call(&Request::Ping).unwrap(), Response::Ok);
        for _ in 0..20 {
            client.ingest((0..100).map(|v| v % 5).collect()).unwrap();
        }
        client.flush().unwrap();
        match client.call(&Request::HeavyHitters(0.1)).unwrap() {
            Response::Items(items) => {
                assert_eq!(items.len(), 5);
            }
            other => panic!("unexpected {other:?}"),
        }
        let m = client.metrics().unwrap();
        assert_eq!(m.updates, 2000);
        assert_eq!(m.snapshot_weight, 2000);
        server.stop();
    }

    #[test]
    fn summary_request_ships_decodable_codec_bytes() {
        let server = mg_server();
        let mut client = Client::connect(server.local_addr()).unwrap();
        client.ingest(vec![9; 500]).unwrap();
        client.flush().unwrap();
        let bytes = match client.call(&Request::Summary).unwrap() {
            Response::Summary(bytes) => bytes,
            other => panic!("unexpected {other:?}"),
        };
        let summary = ShardSummary::decode(&bytes).unwrap();
        assert_eq!(summary.total_weight(), 500);
        assert_eq!(summary.point(9), Some(500));
        server.stop();
    }

    #[test]
    fn unsupported_queries_return_protocol_errors() {
        let server = mg_server();
        let mut client = Client::connect(server.local_addr()).unwrap();
        match client.call(&Request::Rank(3)).unwrap() {
            Response::Error(msg) => assert!(msg.contains("rank")),
            other => panic!("unexpected {other:?}"),
        }
        server.stop();
    }

    #[test]
    fn stop_shuts_engine_down() {
        let server = mg_server();
        let engine = Arc::clone(server.engine());
        server.stop();
        assert!(!engine.ingest(vec![1]));
    }
}

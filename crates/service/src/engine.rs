//! The sharded concurrent aggregation engine.
//!
//! Mergeability (PODS'12, Definition 1) is exactly what makes this design
//! correct: each of `N` worker threads absorbs its slice of the stream into
//! a thread-local *delta* summary, and a background compactor merges the
//! deltas — in whatever order the scheduler produces them — into one global
//! summary. Because the error guarantee survives arbitrary merge trees, the
//! concurrent engine answers queries with the same `εn` bound as a
//! single-threaded summary of the whole stream.
//!
//! Data flow:
//!
//! ```text
//! ingest(batch) ──round-robin──▶ worker 0..N   (bounded queue, backpressure)
//!                                │ local delta, handed off every
//!                                │ `delta_updates` updates
//!                                ▼
//!                             compactor ── merge ──▶ global summary
//!                                │ publish (epoch += 1)
//!                                ▼
//!                        Arc<Snapshot>  ◀── snapshot()/queries (lock-free
//!                                           reads of an immutable value)
//! ```
//!
//! Readers never block writers: a query clones the current `Arc<Snapshot>`
//! under a briefly-held lock and then works on the immutable snapshot;
//! the compactor builds the next snapshot off to the side and swaps the
//! `Arc` in.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, Sender, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Instant;

use ms_core::{Mergeable, Summary};

use crate::config::ServiceConfig;
use crate::summary::ShardSummary;

/// An immutable published view of the global summary.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Compaction epoch: how many publishes preceded this one.
    pub epoch: u64,
    /// The merged global summary as of this epoch.
    pub summary: ShardSummary,
    /// When this snapshot was published.
    pub published_at: Instant,
}

/// Point-in-time engine counters, cheap to copy over the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricsReport {
    /// Updates ingested by the workers.
    pub updates: u64,
    /// Batches accepted onto worker queues.
    pub batches: u64,
    /// Batches rejected by [`Engine::try_ingest`] because a queue was full.
    pub dropped: u64,
    /// Delta merges the compactor performed.
    pub merges: u64,
    /// Epoch of the current snapshot.
    pub epoch: u64,
    /// Age of the current snapshot in microseconds.
    pub snapshot_age_micros: u64,
    /// Total weight visible in the current snapshot.
    pub snapshot_weight: u64,
}

#[derive(Default)]
struct Counters {
    updates: AtomicU64,
    batches: AtomicU64,
    dropped: AtomicU64,
    merges: AtomicU64,
}

enum WorkerMsg {
    Batch(Vec<u64>),
    Flush(Sender<()>),
    Shutdown,
}

enum CompactMsg {
    Delta(ShardSummary),
    Publish(Sender<()>),
}

/// The engine: owns the worker and compactor threads. Cheap to share as
/// `Arc<Engine>`; all public methods take `&self`.
pub struct Engine {
    cfg: ServiceConfig,
    workers: Vec<SyncSender<WorkerMsg>>,
    compact_tx: Mutex<Option<Sender<CompactMsg>>>,
    snapshot: RwLock<Arc<Snapshot>>,
    counters: Arc<Counters>,
    next_shard: AtomicUsize,
    stopped: AtomicBool,
    worker_handles: Mutex<Vec<JoinHandle<()>>>,
    compactor_handle: Mutex<Option<JoinHandle<()>>>,
}

impl Engine {
    /// Start the worker and compactor threads for `cfg`.
    pub fn start(cfg: ServiceConfig) -> Result<Arc<Engine>, &'static str> {
        cfg.check()?;
        let counters = Arc::new(Counters::default());
        let (compact_tx, compact_rx) = mpsc::channel::<CompactMsg>();

        let mut workers = Vec::with_capacity(cfg.shards);
        let mut worker_handles = Vec::with_capacity(cfg.shards);
        for shard in 0..cfg.shards {
            let (tx, rx) = mpsc::sync_channel::<WorkerMsg>(cfg.queue_depth);
            workers.push(tx);
            worker_handles.push(spawn_worker(
                shard,
                cfg.clone(),
                rx,
                compact_tx.clone(),
                Arc::clone(&counters),
            ));
        }

        let engine = Arc::new(Engine {
            snapshot: RwLock::new(Arc::new(Snapshot {
                epoch: 0,
                summary: ShardSummary::new(&cfg, usize::MAX),
                published_at: Instant::now(),
            })),
            cfg: cfg.clone(),
            workers,
            compact_tx: Mutex::new(Some(compact_tx)),
            counters,
            next_shard: AtomicUsize::new(0),
            stopped: AtomicBool::new(false),
            worker_handles: Mutex::new(worker_handles),
            compactor_handle: Mutex::new(None),
        });

        let compactor = spawn_compactor(Arc::clone(&engine), compact_rx);
        *engine.compactor_handle.lock().unwrap() = Some(compactor);
        Ok(engine)
    }

    /// The configuration the engine was started with.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// Enqueue a batch on the next shard, blocking while its queue is full
    /// (backpressure). Returns `false` if the engine is shut down.
    pub fn ingest(&self, batch: Vec<u64>) -> bool {
        if self.stopped.load(Ordering::Acquire) || batch.is_empty() {
            return false;
        }
        let shard = self.next_shard.fetch_add(1, Ordering::Relaxed) % self.workers.len();
        if self.workers[shard].send(WorkerMsg::Batch(batch)).is_err() {
            return false;
        }
        self.counters.batches.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Enqueue a batch without blocking. A full queue counts the batch as
    /// dropped and returns `false`.
    pub fn try_ingest(&self, batch: Vec<u64>) -> bool {
        if self.stopped.load(Ordering::Acquire) || batch.is_empty() {
            return false;
        }
        let shard = self.next_shard.fetch_add(1, Ordering::Relaxed) % self.workers.len();
        match self.workers[shard].try_send(WorkerMsg::Batch(batch)) {
            Ok(()) => {
                self.counters.batches.fetch_add(1, Ordering::Relaxed);
                true
            }
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                self.counters.dropped.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// Force every worker to hand its delta to the compactor and publish a
    /// fresh snapshot containing all data ingested before this call.
    ///
    /// Ordering argument: each worker pushes its delta onto the compactor
    /// queue *before* acking, and the publish barrier is enqueued after all
    /// acks, so the barrier drains behind every delta.
    pub fn flush(&self) {
        let (ack_tx, ack_rx) = mpsc::channel();
        let mut waiting = 0;
        for tx in &self.workers {
            if tx.send(WorkerMsg::Flush(ack_tx.clone())).is_ok() {
                waiting += 1;
            }
        }
        drop(ack_tx);
        for _ in 0..waiting {
            let _ = ack_rx.recv();
        }
        let (pub_tx, pub_rx) = mpsc::channel();
        let sent = {
            let guard = self.compact_tx.lock().unwrap();
            match guard.as_ref() {
                Some(tx) => tx.send(CompactMsg::Publish(pub_tx)).is_ok(),
                None => false,
            }
        };
        if sent {
            let _ = pub_rx.recv();
        }
    }

    /// The current snapshot. The lock is held only to clone the `Arc`.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        Arc::clone(&self.snapshot.read().unwrap())
    }

    fn publish(&self, summary: ShardSummary) {
        let mut guard = self.snapshot.write().unwrap();
        let epoch = guard.epoch + 1;
        *guard = Arc::new(Snapshot {
            epoch,
            summary,
            published_at: Instant::now(),
        });
    }

    /// Current counters plus snapshot-derived gauges.
    pub fn metrics(&self) -> MetricsReport {
        let snap = self.snapshot();
        MetricsReport {
            updates: self.counters.updates.load(Ordering::Relaxed),
            batches: self.counters.batches.load(Ordering::Relaxed),
            dropped: self.counters.dropped.load(Ordering::Relaxed),
            merges: self.counters.merges.load(Ordering::Relaxed),
            epoch: snap.epoch,
            snapshot_age_micros: snap.published_at.elapsed().as_micros() as u64,
            snapshot_weight: snap.summary.total_weight(),
        }
    }

    /// Drain everything, stop all threads, and return the final snapshot.
    /// Idempotent; later calls just return the current snapshot.
    pub fn shutdown(&self) -> Arc<Snapshot> {
        if self.stopped.swap(true, Ordering::AcqRel) {
            return self.snapshot();
        }
        // Drain workers: their Shutdown handler forwards any pending delta.
        for tx in &self.workers {
            let _ = tx.send(WorkerMsg::Shutdown);
        }
        for handle in self.worker_handles.lock().unwrap().drain(..) {
            let _ = handle.join();
        }
        // Publish whatever the compactor accumulated, then close its queue.
        let (pub_tx, pub_rx) = mpsc::channel();
        if let Some(tx) = self.compact_tx.lock().unwrap().take() {
            if tx.send(CompactMsg::Publish(pub_tx)).is_ok() {
                let _ = pub_rx.recv();
            }
        }
        if let Some(handle) = self.compactor_handle.lock().unwrap().take() {
            let _ = handle.join();
        }
        self.snapshot()
    }
}

fn spawn_worker(
    shard: usize,
    cfg: ServiceConfig,
    rx: Receiver<WorkerMsg>,
    compact_tx: Sender<CompactMsg>,
    counters: Arc<Counters>,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("ms-worker-{shard}"))
        .spawn(move || {
            let mut delta = ShardSummary::new(&cfg, shard);
            let mut pending = 0usize;
            let hand_off = |delta: &mut ShardSummary, pending: &mut usize| {
                if *pending > 0 {
                    let full = std::mem::replace(delta, ShardSummary::new(&cfg, shard));
                    let _ = compact_tx.send(CompactMsg::Delta(full));
                    *pending = 0;
                }
            };
            for msg in rx {
                match msg {
                    WorkerMsg::Batch(items) => {
                        counters
                            .updates
                            .fetch_add(items.len() as u64, Ordering::Relaxed);
                        pending += items.len();
                        for item in items {
                            delta.update(item);
                        }
                        if pending >= cfg.delta_updates {
                            hand_off(&mut delta, &mut pending);
                        }
                    }
                    WorkerMsg::Flush(ack) => {
                        hand_off(&mut delta, &mut pending);
                        let _ = ack.send(());
                    }
                    WorkerMsg::Shutdown => {
                        hand_off(&mut delta, &mut pending);
                        break;
                    }
                }
            }
        })
        .expect("spawn worker thread")
}

fn spawn_compactor(engine: Arc<Engine>, rx: Receiver<CompactMsg>) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name("ms-compactor".to_string())
        .spawn(move || {
            let cfg = engine.cfg.clone();
            let mut global = ShardSummary::new(&cfg, usize::MAX);
            for msg in rx {
                match msg {
                    CompactMsg::Delta(delta) => {
                        match global.clone().merge(delta) {
                            Ok(merged) => global = merged,
                            // Deltas come from ShardSummary::new under the
                            // same config, so kinds/ε always match; a
                            // failure here would be an engine bug. Keep the
                            // previous global rather than poisoning it.
                            Err(_) => continue,
                        }
                        engine.counters.merges.fetch_add(1, Ordering::Relaxed);
                        engine.publish(global.clone());
                    }
                    CompactMsg::Publish(ack) => {
                        engine.publish(global.clone());
                        let _ = ack.send(());
                    }
                }
            }
        })
        .expect("spawn compactor thread")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SummaryKind;

    #[test]
    fn ingest_flush_query_roundtrip() {
        let engine = Engine::start(ServiceConfig::new(SummaryKind::Mg, 0.05).shards(2)).unwrap();
        for chunk in (0..10_000u64).collect::<Vec<_>>().chunks(100) {
            assert!(engine.ingest(chunk.iter().map(|&v| v % 10).collect()));
        }
        engine.flush();
        let snap = engine.snapshot();
        assert_eq!(snap.summary.total_weight(), 10_000);
        assert!(snap.epoch >= 1);
        let m = engine.metrics();
        assert_eq!(m.updates, 10_000);
        assert_eq!(m.batches, 100);
        assert_eq!(m.dropped, 0);
        assert_eq!(m.snapshot_weight, 10_000);
        engine.shutdown();
    }

    #[test]
    fn shutdown_drains_pending_deltas() {
        let engine =
            Engine::start(ServiceConfig::new(SummaryKind::CountMin, 0.01).shards(3)).unwrap();
        for _ in 0..30 {
            assert!(engine.ingest(vec![7; 50]));
        }
        // No flush: shutdown itself must make all 1500 updates visible.
        let snap = engine.shutdown();
        assert_eq!(snap.summary.total_weight(), 1500);
        assert_eq!(snap.summary.point(7), Some(1500));
        // Idempotent.
        assert_eq!(engine.shutdown().summary.total_weight(), 1500);
        assert!(!engine.ingest(vec![1]));
    }

    #[test]
    fn try_ingest_counts_drops_when_queues_fill() {
        let cfg = ServiceConfig::new(SummaryKind::Mg, 0.1)
            .shards(1)
            .queue_depth(1);
        let engine = Engine::start(cfg).unwrap();
        let mut accepted = 0u64;
        let mut rejected = 0u64;
        for _ in 0..2_000 {
            if engine.try_ingest(vec![1; 512]) {
                accepted += 1;
            } else {
                rejected += 1;
            }
        }
        let m = engine.metrics();
        assert_eq!(m.batches, accepted);
        assert_eq!(m.dropped, rejected);
        engine.shutdown();
        assert_eq!(engine.metrics().updates, accepted * 512);
    }

    #[test]
    fn epochs_advance_and_snapshots_are_immutable() {
        let cfg = ServiceConfig::new(SummaryKind::Mg, 0.05)
            .shards(2)
            .delta_updates(100);
        let engine = Engine::start(cfg).unwrap();
        engine.ingest((0..500).collect());
        engine.flush();
        let early = engine.snapshot();
        engine.ingest((0..500).collect());
        engine.flush();
        let late = engine.snapshot();
        assert!(late.epoch > early.epoch);
        // The old snapshot still answers from its own epoch.
        assert_eq!(early.summary.total_weight(), 500);
        assert_eq!(late.summary.total_weight(), 1000);
        engine.shutdown();
    }

    #[test]
    fn rejects_bad_config() {
        assert!(Engine::start(ServiceConfig::new(SummaryKind::Mg, 0.05).shards(0)).is_err());
    }
}

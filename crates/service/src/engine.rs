//! The sharded concurrent aggregation engine.
//!
//! Mergeability (PODS'12, Definition 1) is exactly what makes this design
//! correct: each of `N` worker threads absorbs its slice of the stream into
//! a thread-local *delta* summary, and a background compactor merges the
//! deltas — in whatever order the scheduler produces them — into one global
//! summary. Because the error guarantee survives arbitrary merge trees, the
//! concurrent engine answers queries with the same `εn` bound as a
//! single-threaded summary of the whole stream.
//!
//! Data flow:
//!
//! ```text
//! ingest(batch) ──round-robin──▶ worker 0..N   (bounded queue, backpressure)
//!                                │ local delta, handed off every
//!                                │ `delta_updates` updates
//!                                ▼
//!                             compactor ── merge ──▶ global summary
//!                                │ publish (epoch += 1)
//!                                ▼
//!                        Arc<Snapshot>  ◀── snapshot()/queries (lock-free
//!                                           reads of an immutable value)
//! ```
//!
//! Readers never block writers: a query clones the current `Arc<Snapshot>`
//! under a briefly-held lock and then works on the immutable snapshot;
//! the compactor builds the next snapshot off to the side and swaps the
//! `Arc` in.
//!
//! ## Failure model
//!
//! The engine is built to *degrade*, not die. A worker thread that exits
//! without warning (injected via [`crate::FaultPlan`], or a panic inside a
//! summary) loses only its un-handed-off delta and whatever batches were
//! still queued behind it; every delta already merged by the compactor
//! stays in the published snapshot, which remains a valid `ε·n'` summary of
//! the `n'` updates that survived — that is the mergeability theorem doing
//! systems work. Ingest detects the dead shard on the next send, counts it
//! in [`MetricsReport::shards_lost`], reroutes the batch (counted in
//! [`MetricsReport::retries`]) and, when `respawn_lost_shards` is set,
//! restarts the worker with a fresh delta. Fallible operations return
//! [`ServiceError`] instead of panicking, and internal locks tolerate
//! poisoning (a panicking worker cannot take queries down with it).

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, Sender, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::thread::JoinHandle;
use std::time::Instant;

use ms_core::{Mergeable, ServiceError, Summary};
use ms_obs::RegistrySnapshot;

use crate::config::ServiceConfig;
use crate::fault::FaultAction;
use crate::summary::ShardSummary;
use crate::telemetry::{timed, EngineTelemetry};

/// An immutable published view of the global summary.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Compaction epoch: how many publishes preceded this one.
    pub epoch: u64,
    /// The merged global summary as of this epoch.
    pub summary: ShardSummary,
    /// When this snapshot was published.
    pub published_at: Instant,
}

/// Point-in-time engine counters, cheap to copy over the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricsReport {
    /// Updates ingested by the workers.
    pub updates: u64,
    /// Batches accepted onto worker queues.
    pub batches: u64,
    /// Batches rejected by [`Engine::try_ingest`] because a queue was full.
    pub dropped: u64,
    /// Delta merges the compactor performed.
    pub merges: u64,
    /// Epoch of the current snapshot.
    pub epoch: u64,
    /// Age of the current snapshot in microseconds.
    pub snapshot_age_micros: u64,
    /// Total weight visible in the current snapshot.
    pub snapshot_weight: u64,
    /// Worker-death events detected (each respawn-or-tombstone counts once).
    pub shards_lost: u64,
    /// Wire frames the server rejected as malformed.
    pub frames_rejected: u64,
    /// Batches rerouted to another shard after a send to a dead one.
    pub retries: u64,
}

#[derive(Default)]
struct Counters {
    updates: AtomicU64,
    batches: AtomicU64,
    dropped: AtomicU64,
    merges: AtomicU64,
    shards_lost: AtomicU64,
    frames_rejected: AtomicU64,
    retries: AtomicU64,
}

enum WorkerMsg {
    /// A batch of items plus its enqueue time (for queue-wait histograms).
    Batch(Vec<u64>, Instant),
    Flush(Sender<()>),
    Shutdown,
}

enum CompactMsg {
    Delta(ShardSummary),
    Publish(Sender<()>),
}

/// One ingest shard: its queue sender (None = dead and not respawned) and a
/// generation counter so concurrent senders agree on *which* incarnation
/// died (only the first failure against a generation is a death event).
struct ShardSlot {
    gen: u64,
    tx: Option<SyncSender<WorkerMsg>>,
}

/// Lock helpers: a poisoned lock means some thread panicked while holding
/// it. Every critical section here leaves the data structurally valid at
/// all times, so we keep serving instead of propagating the panic.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn read<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(|e| e.into_inner())
}

fn write<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(|e| e.into_inner())
}

/// The engine: owns the worker and compactor threads. Cheap to share as
/// `Arc<Engine>`; all public methods take `&self`.
pub struct Engine {
    cfg: ServiceConfig,
    shards: RwLock<Vec<ShardSlot>>,
    /// Cumulative per-shard batch indices, shared with workers so a
    /// respawned worker continues the count (fault plans key off it).
    batch_indices: Arc<Vec<AtomicU64>>,
    compact_tx: Mutex<Option<Sender<CompactMsg>>>,
    snapshot: RwLock<Arc<Snapshot>>,
    counters: Arc<Counters>,
    next_shard: AtomicUsize,
    stopped: AtomicBool,
    /// Held for the whole drain: a concurrent second `shutdown` blocks on
    /// it and then observes the fully drained snapshot, never a partial one.
    shutdown_lock: Mutex<()>,
    worker_handles: Mutex<Vec<JoinHandle<()>>>,
    compactor_handle: Mutex<Option<JoinHandle<()>>>,
    telemetry: Arc<EngineTelemetry>,
}

impl Engine {
    /// Start the worker and compactor threads for `cfg`.
    pub fn start(cfg: ServiceConfig) -> Result<Arc<Engine>, ServiceError> {
        cfg.check()?;
        let counters = Arc::new(Counters::default());
        let telemetry = Arc::new(EngineTelemetry::new(cfg.shards, cfg.telemetry));
        let (compact_tx, compact_rx) = mpsc::channel::<CompactMsg>();
        let batch_indices = Arc::new(
            (0..cfg.shards)
                .map(|_| AtomicU64::new(0))
                .collect::<Vec<_>>(),
        );

        let mut slots = Vec::with_capacity(cfg.shards);
        let mut worker_handles = Vec::with_capacity(cfg.shards);
        for shard in 0..cfg.shards {
            let (tx, rx) = mpsc::sync_channel::<WorkerMsg>(cfg.queue_depth);
            let handle = spawn_worker(
                shard,
                cfg.clone(),
                rx,
                compact_tx.clone(),
                Arc::clone(&counters),
                Arc::clone(&batch_indices),
                Arc::clone(&telemetry),
            )?;
            slots.push(ShardSlot {
                gen: 0,
                tx: Some(tx),
            });
            worker_handles.push(handle);
        }

        let engine = Arc::new(Engine {
            snapshot: RwLock::new(Arc::new(Snapshot {
                epoch: 0,
                summary: ShardSummary::new(&cfg, usize::MAX),
                published_at: Instant::now(),
            })),
            cfg: cfg.clone(),
            shards: RwLock::new(slots),
            batch_indices,
            compact_tx: Mutex::new(Some(compact_tx)),
            counters,
            next_shard: AtomicUsize::new(0),
            stopped: AtomicBool::new(false),
            shutdown_lock: Mutex::new(()),
            worker_handles: Mutex::new(worker_handles),
            compactor_handle: Mutex::new(None),
            telemetry,
        });

        let compactor = spawn_compactor(Arc::clone(&engine), compact_rx)?;
        *lock(&engine.compactor_handle) = Some(compactor);
        Ok(engine)
    }

    /// The configuration the engine was started with.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// Clone the sender for `shard` if it is alive, with its generation.
    fn shard_sender(&self, shard: usize) -> Option<(u64, SyncSender<WorkerMsg>)> {
        let shards = read(&self.shards);
        let slot = &shards[shard];
        slot.tx.clone().map(|tx| (slot.gen, tx))
    }

    /// True when no shard has a live queue.
    fn all_shards_dead(&self) -> bool {
        read(&self.shards).iter().all(|s| s.tx.is_none())
    }

    /// Handle the death of `shard` at generation `gen`: count it once,
    /// respawn (if configured and not shutting down) or tombstone the slot.
    fn note_dead_shard(&self, shard: usize, gen: u64) {
        let respawn = {
            let mut shards = write(&self.shards);
            let slot = &mut shards[shard];
            if slot.gen != gen {
                // Another thread already handled this incarnation's death.
                return;
            }
            slot.gen += 1;
            slot.tx = None;
            // Release pairs with the Acquire load in `metrics`: a report
            // that observes engine state derived from this death (e.g. the
            // retried batch) also observes the incremented counter.
            self.counters.shards_lost.fetch_add(1, Ordering::Release);
            self.telemetry
                .event("shard_death", &[("shard", shard as u64), ("gen", gen)]);
            // The dead worker's queued batches are gone with its receiver.
            self.telemetry.queue_reset(shard);
            self.cfg.respawn_lost_shards && !self.stopped.load(Ordering::Acquire)
        };
        if !respawn {
            return;
        }
        let Some(compact_tx) = lock(&self.compact_tx).clone() else {
            return; // compactor already closed: shutdown is racing us
        };
        let (tx, rx) = mpsc::sync_channel::<WorkerMsg>(self.cfg.queue_depth);
        match spawn_worker(
            shard,
            self.cfg.clone(),
            rx,
            compact_tx,
            Arc::clone(&self.counters),
            Arc::clone(&self.batch_indices),
            Arc::clone(&self.telemetry),
        ) {
            Ok(handle) => {
                self.telemetry
                    .event("shard_respawn", &[("shard", shard as u64)]);
                let mut shards = write(&self.shards);
                // Install only if the slot is still vacant AND shutdown has
                // not started meanwhile: `shutdown` sets `stopped` before
                // taking this lock, so a worker installed here is guaranteed
                // to be seen (and joined) by it. Otherwise drop `tx` — the
                // fresh worker finds its queue closed and exits on its own.
                if !self.stopped.load(Ordering::Acquire) && shards[shard].tx.is_none() {
                    shards[shard].tx = Some(tx);
                    lock(&self.worker_handles).push(handle);
                }
            }
            Err(_) => {
                // Could not respawn: the slot stays tombstoned and ingest
                // keeps rerouting to the surviving shards.
            }
        }
    }

    /// Enqueue a batch on the next live shard, blocking while its queue is
    /// full (backpressure). A dead shard is counted, respawned if
    /// configured, and the batch rerouted.
    pub fn ingest(&self, batch: Vec<u64>) -> Result<(), ServiceError> {
        if batch.is_empty() {
            return Ok(());
        }
        let shard_count = self.cfg.shards;
        let mut batch = batch;
        let mut failures = 0usize;
        loop {
            if self.stopped.load(Ordering::Acquire) {
                return Err(ServiceError::Shutdown);
            }
            let shard = self.next_shard.fetch_add(1, Ordering::Relaxed) % shard_count;
            let Some((gen, tx)) = self.shard_sender(shard) else {
                failures += 1;
                if failures >= shard_count && self.all_shards_dead() {
                    return Err(self.all_shards_lost());
                }
                continue;
            };
            match tx.send(WorkerMsg::Batch(batch, Instant::now())) {
                Ok(()) => {
                    self.counters.batches.fetch_add(1, Ordering::Relaxed);
                    self.telemetry.queue_pushed(shard);
                    return Ok(());
                }
                Err(mpsc::SendError(msg)) => {
                    let WorkerMsg::Batch(b, _) = msg else {
                        unreachable!()
                    };
                    batch = b;
                    self.note_dead_shard(shard, gen);
                    self.counters.retries.fetch_add(1, Ordering::Release);
                    failures += 1;
                    if failures >= shard_count.saturating_mul(2) && self.all_shards_dead() {
                        return Err(self.all_shards_lost());
                    }
                }
            }
        }
    }

    /// Enqueue a batch without blocking. A full queue counts the batch as
    /// dropped and returns [`ServiceError::Backpressure`]; a dead shard is
    /// rerouted like [`Engine::ingest`].
    pub fn try_ingest(&self, batch: Vec<u64>) -> Result<(), ServiceError> {
        if batch.is_empty() {
            return Ok(());
        }
        if self.stopped.load(Ordering::Acquire) {
            return Err(ServiceError::Shutdown);
        }
        let shard_count = self.cfg.shards;
        let mut batch = batch;
        let mut attempts = 0usize;
        while attempts < shard_count.saturating_mul(2) {
            let shard = self.next_shard.fetch_add(1, Ordering::Relaxed) % shard_count;
            let Some((gen, tx)) = self.shard_sender(shard) else {
                attempts += 1;
                if self.all_shards_dead() {
                    return Err(self.all_shards_lost());
                }
                continue;
            };
            match tx.try_send(WorkerMsg::Batch(batch, Instant::now())) {
                Ok(()) => {
                    self.counters.batches.fetch_add(1, Ordering::Relaxed);
                    self.telemetry.queue_pushed(shard);
                    return Ok(());
                }
                Err(TrySendError::Full(_)) => {
                    self.counters.dropped.fetch_add(1, Ordering::Relaxed);
                    return Err(ServiceError::Backpressure);
                }
                Err(TrySendError::Disconnected(msg)) => {
                    let WorkerMsg::Batch(b, _) = msg else {
                        unreachable!()
                    };
                    batch = b;
                    self.note_dead_shard(shard, gen);
                    self.counters.retries.fetch_add(1, Ordering::Release);
                    attempts += 1;
                }
            }
        }
        Err(self.all_shards_lost())
    }

    /// Total shard loss is the engine's fatal state: dump the flight
    /// recorder (first occurrence only) so the failure ships with a trace.
    fn all_shards_lost(&self) -> ServiceError {
        self.telemetry.event("all_shards_lost", &[]);
        self.telemetry.dump_flight(self.cfg.seed, "all-shards-lost");
        ServiceError::AllShardsLost
    }

    /// Force every live worker to hand its delta to the compactor and
    /// publish a fresh snapshot containing all data ingested before this
    /// call. Dead shards are skipped (their loss is already accounted).
    ///
    /// Ordering argument: each worker pushes its delta onto the compactor
    /// queue *before* acking, and the publish barrier is enqueued after all
    /// acks, so the barrier drains behind every delta.
    pub fn flush(&self) -> Result<(), ServiceError> {
        if self.stopped.load(Ordering::Acquire) {
            return Err(ServiceError::Shutdown);
        }
        let (ack_tx, ack_rx) = mpsc::channel();
        let mut waiting = 0;
        let targets: Vec<(usize, u64, SyncSender<WorkerMsg>)> = read(&self.shards)
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.tx.clone().map(|tx| (i, s.gen, tx)))
            .collect();
        for (shard, gen, tx) in targets {
            if tx.send(WorkerMsg::Flush(ack_tx.clone())).is_ok() {
                waiting += 1;
            } else {
                self.note_dead_shard(shard, gen);
            }
        }
        drop(ack_tx);
        for _ in 0..waiting {
            let _ = ack_rx.recv();
        }
        let (pub_tx, pub_rx) = mpsc::channel();
        let sent = {
            let guard = lock(&self.compact_tx);
            match guard.as_ref() {
                Some(tx) => tx.send(CompactMsg::Publish(pub_tx)).is_ok(),
                None => false,
            }
        };
        if sent {
            let _ = pub_rx.recv();
            Ok(())
        } else {
            Err(ServiceError::Shutdown)
        }
    }

    /// The current snapshot. The lock is held only to clone the `Arc`.
    /// Always answers, even after shutdown or a worker panic.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        Arc::clone(&read(&self.snapshot))
    }

    fn publish(&self, summary: ShardSummary) {
        let mut guard = write(&self.snapshot);
        let epoch = guard.epoch + 1;
        let since_last = guard.published_at.elapsed().as_micros() as u64;
        *guard = Arc::new(Snapshot {
            epoch,
            summary,
            published_at: Instant::now(),
        });
        drop(guard);
        self.telemetry.record_publish(epoch, since_last);
    }

    /// Record a wire frame the server rejected as malformed.
    pub fn record_rejected_frame(&self) {
        // Release: see `metrics` for the pairing argument.
        self.counters
            .frames_rejected
            .fetch_add(1, Ordering::Release);
    }

    /// The engine's observability plane (latency histograms, queue-depth
    /// gauges, the flight recorder).
    pub fn telemetry(&self) -> &Arc<EngineTelemetry> {
        &self.telemetry
    }

    /// The telemetry registry snapshot with the engine's own counters and
    /// snapshot gauges folded in — the payload served for
    /// [`crate::Request::Telemetry`]. Mergeable like any other
    /// [`RegistrySnapshot`].
    pub fn telemetry_snapshot(&self) -> RegistrySnapshot {
        let m = self.metrics();
        let engine = RegistrySnapshot {
            counters: vec![
                ("batches_total".to_string(), m.batches),
                ("dropped_total".to_string(), m.dropped),
                ("frames_rejected_total".to_string(), m.frames_rejected),
                ("merges_total".to_string(), m.merges),
                ("retries_total".to_string(), m.retries),
                ("shards_lost_total".to_string(), m.shards_lost),
                ("updates_total".to_string(), m.updates),
            ],
            gauges: vec![
                (
                    "snapshot_age_micros".to_string(),
                    m.snapshot_age_micros as i64,
                ),
                ("snapshot_weight".to_string(), m.snapshot_weight as i64),
            ],
            histograms: Vec::new(),
        };
        self.telemetry.snapshot().merge(&engine)
    }

    /// Current counters plus snapshot-derived gauges.
    ///
    /// Consistency: each counter is individually monotone, and the
    /// `shards_lost` / `frames_rejected` / `retries` increments use
    /// `Release` paired with the `Acquire` loads here, so a report
    /// observes every such event that happened-before anything else it
    /// observes. The report is still not a consistent cut across *all*
    /// fields — `updates` keeps advancing while the snapshot fields are
    /// read — which is inherent to lock-free counters and fine for
    /// monitoring; tests may only assume per-field monotonicity.
    pub fn metrics(&self) -> MetricsReport {
        let snap = self.snapshot();
        MetricsReport {
            updates: self.counters.updates.load(Ordering::Relaxed),
            batches: self.counters.batches.load(Ordering::Relaxed),
            dropped: self.counters.dropped.load(Ordering::Relaxed),
            merges: self.counters.merges.load(Ordering::Relaxed),
            epoch: snap.epoch,
            snapshot_age_micros: snap.published_at.elapsed().as_micros() as u64,
            snapshot_weight: snap.summary.total_weight(),
            shards_lost: self.counters.shards_lost.load(Ordering::Acquire),
            frames_rejected: self.counters.frames_rejected.load(Ordering::Acquire),
            retries: self.counters.retries.load(Ordering::Acquire),
        }
    }

    /// Drain everything, stop all threads, and return the final snapshot.
    /// Idempotent; later calls just return the current snapshot.
    pub fn shutdown(&self) -> Arc<Snapshot> {
        let _draining = lock(&self.shutdown_lock);
        if self.stopped.swap(true, Ordering::AcqRel) {
            // Whoever held the lock before us finished the drain.
            return self.snapshot();
        }
        // Drain workers: their Shutdown handler forwards any pending delta.
        let txs: Vec<SyncSender<WorkerMsg>> = {
            let mut shards = write(&self.shards);
            shards
                .iter_mut()
                .filter_map(|slot| {
                    slot.gen += 1;
                    slot.tx.take()
                })
                .collect()
        };
        for tx in &txs {
            let _ = tx.send(WorkerMsg::Shutdown);
        }
        drop(txs);
        for handle in lock(&self.worker_handles).drain(..) {
            let _ = handle.join();
        }
        // Publish whatever the compactor accumulated, then close its queue.
        let (pub_tx, pub_rx) = mpsc::channel();
        if let Some(tx) = lock(&self.compact_tx).take() {
            if tx.send(CompactMsg::Publish(pub_tx)).is_ok() {
                let _ = pub_rx.recv();
            }
        }
        if let Some(handle) = lock(&self.compactor_handle).take() {
            let _ = handle.join();
        }
        self.snapshot()
    }
}

fn spawn_worker(
    shard: usize,
    cfg: ServiceConfig,
    rx: Receiver<WorkerMsg>,
    compact_tx: Sender<CompactMsg>,
    counters: Arc<Counters>,
    batch_indices: Arc<Vec<AtomicU64>>,
    telemetry: Arc<EngineTelemetry>,
) -> std::io::Result<JoinHandle<()>> {
    std::thread::Builder::new()
        .name(format!("ms-worker-{shard}"))
        .spawn(move || {
            let trace = telemetry.recorder().register(&format!("worker-{shard}"));
            let mut delta = ShardSummary::new(&cfg, shard);
            let mut pending = 0usize;
            let hand_off = |delta: &mut ShardSummary, pending: &mut usize| {
                if *pending > 0 {
                    let full = std::mem::replace(delta, ShardSummary::new(&cfg, shard));
                    let _ = compact_tx.send(CompactMsg::Delta(full));
                    *pending = 0;
                }
            };
            for msg in rx {
                match msg {
                    WorkerMsg::Batch(items, enqueued) => {
                        telemetry.queue_popped(shard);
                        telemetry.record_queue_wait(shard, enqueued.elapsed().as_micros() as u64);
                        let index = batch_indices[shard].fetch_add(1, Ordering::Relaxed);
                        match cfg.fault_plan.worker_batch(shard, index) {
                            FaultAction::Continue => {}
                            FaultAction::StallMs(ms) => {
                                trace.event("stall", &[("ms", ms)]);
                                std::thread::sleep(std::time::Duration::from_millis(ms));
                            }
                            FaultAction::Die => {
                                // Crash semantics: the pending delta and all
                                // queued batches are lost; deltas already
                                // handed off survive in the global summary.
                                trace.event(
                                    "worker_die",
                                    &[("batch_index", index), ("pending", pending as u64)],
                                );
                                return;
                            }
                        }
                        counters
                            .updates
                            .fetch_add(items.len() as u64, Ordering::Relaxed);
                        pending += items.len();
                        let (_, micros) = timed(|| {
                            for item in items {
                                delta.update(item);
                            }
                        });
                        telemetry.record_ingest_batch(shard, micros);
                        if pending >= cfg.delta_updates {
                            let handed = pending as u64;
                            let (_, micros) = timed(|| hand_off(&mut delta, &mut pending));
                            trace.event("hand_off", &[("updates", handed), ("micros", micros)]);
                        }
                    }
                    WorkerMsg::Flush(ack) => {
                        hand_off(&mut delta, &mut pending);
                        let _ = ack.send(());
                    }
                    WorkerMsg::Shutdown => {
                        hand_off(&mut delta, &mut pending);
                        break;
                    }
                }
            }
        })
}

fn spawn_compactor(
    engine: Arc<Engine>,
    rx: Receiver<CompactMsg>,
) -> std::io::Result<JoinHandle<()>> {
    std::thread::Builder::new()
        .name("ms-compactor".to_string())
        .spawn(move || {
            let cfg = engine.cfg.clone();
            let trace = engine.telemetry.recorder().register("compactor");
            let mut global = ShardSummary::new(&cfg, usize::MAX);
            let mut merge_index = 0u64;
            for msg in rx {
                match msg {
                    CompactMsg::Delta(delta) => {
                        let stall_ms = cfg.fault_plan.compactor_merge(merge_index);
                        merge_index += 1;
                        if stall_ms > 0 {
                            trace.event("stall", &[("ms", stall_ms)]);
                            std::thread::sleep(std::time::Duration::from_millis(stall_ms));
                        }
                        let mut span = ms_obs::span!(trace, "compact", merge_index = merge_index);
                        let (merged, micros) = timed(|| global.clone().merge(delta));
                        match merged {
                            Ok(merged) => global = merged,
                            // Deltas come from ShardSummary::new under the
                            // same config, so kinds/ε always match; a
                            // failure here would be an engine bug. Keep the
                            // previous global rather than poisoning it.
                            Err(_) => continue,
                        }
                        // The compactor folds deltas left-deep, so the
                        // snapshot's merge tree is `merge_index` deep.
                        engine.telemetry.record_compact_merge(micros, merge_index);
                        engine.counters.merges.fetch_add(1, Ordering::Relaxed);
                        engine.publish(global.clone());
                        span.field("epoch", engine.snapshot().epoch);
                    }
                    CompactMsg::Publish(ack) => {
                        engine.publish(global.clone());
                        let _ = ack.send(());
                    }
                }
            }
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SummaryKind;
    use crate::fault::plan_fn;

    #[test]
    fn ingest_flush_query_roundtrip() {
        let engine = Engine::start(ServiceConfig::new(SummaryKind::Mg, 0.05).shards(2)).unwrap();
        for chunk in (0..10_000u64).collect::<Vec<_>>().chunks(100) {
            engine
                .ingest(chunk.iter().map(|&v| v % 10).collect())
                .unwrap();
        }
        engine.flush().unwrap();
        let snap = engine.snapshot();
        assert_eq!(snap.summary.total_weight(), 10_000);
        assert!(snap.epoch >= 1);
        let m = engine.metrics();
        assert_eq!(m.updates, 10_000);
        assert_eq!(m.batches, 100);
        assert_eq!(m.dropped, 0);
        assert_eq!(m.snapshot_weight, 10_000);
        assert_eq!(m.shards_lost, 0);
        assert_eq!(m.retries, 0);
        engine.shutdown();
    }

    #[test]
    fn shutdown_drains_pending_deltas() {
        let engine =
            Engine::start(ServiceConfig::new(SummaryKind::CountMin, 0.01).shards(3)).unwrap();
        for _ in 0..30 {
            engine.ingest(vec![7; 50]).unwrap();
        }
        // No flush: shutdown itself must make all 1500 updates visible.
        let snap = engine.shutdown();
        assert_eq!(snap.summary.total_weight(), 1500);
        assert_eq!(snap.summary.point(7), Some(1500));
        // Idempotent.
        assert_eq!(engine.shutdown().summary.total_weight(), 1500);
        assert_eq!(engine.ingest(vec![1]), Err(ServiceError::Shutdown));
        assert_eq!(engine.flush(), Err(ServiceError::Shutdown));
        assert_eq!(engine.try_ingest(vec![1]), Err(ServiceError::Shutdown));
    }

    #[test]
    fn try_ingest_counts_drops_when_queues_fill() {
        let cfg = ServiceConfig::new(SummaryKind::Mg, 0.1)
            .shards(1)
            .queue_depth(1);
        let engine = Engine::start(cfg).unwrap();
        let mut accepted = 0u64;
        let mut rejected = 0u64;
        for _ in 0..2_000 {
            match engine.try_ingest(vec![1; 512]) {
                Ok(()) => accepted += 1,
                Err(ServiceError::Backpressure) => rejected += 1,
                Err(other) => panic!("unexpected {other:?}"),
            }
        }
        let m = engine.metrics();
        assert_eq!(m.batches, accepted);
        assert_eq!(m.dropped, rejected);
        engine.shutdown();
        assert_eq!(engine.metrics().updates, accepted * 512);
    }

    #[test]
    fn epochs_advance_and_snapshots_are_immutable() {
        let cfg = ServiceConfig::new(SummaryKind::Mg, 0.05)
            .shards(2)
            .delta_updates(100);
        let engine = Engine::start(cfg).unwrap();
        engine.ingest((0..500).collect()).unwrap();
        engine.flush().unwrap();
        let early = engine.snapshot();
        engine.ingest((0..500).collect()).unwrap();
        engine.flush().unwrap();
        let late = engine.snapshot();
        assert!(late.epoch > early.epoch);
        // The old snapshot still answers from its own epoch.
        assert_eq!(early.summary.total_weight(), 500);
        assert_eq!(late.summary.total_weight(), 1000);
        engine.shutdown();
    }

    #[test]
    fn rejects_bad_config() {
        assert!(matches!(
            Engine::start(ServiceConfig::new(SummaryKind::Mg, 0.05).shards(0)),
            Err(ServiceError::Config(_))
        ));
    }

    #[test]
    fn dead_shard_is_detected_rerouted_and_respawned() {
        // Shard 0 dies at its third batch; the engine must keep accepting
        // every batch (rerouting + respawning) and lose at most the dead
        // worker's pending delta and queued batches.
        let cfg = ServiceConfig::new(SummaryKind::Mg, 0.05)
            .shards(2)
            .delta_updates(50)
            .queue_depth(4)
            .fault_plan(plan_fn(|shard, idx| {
                if shard == 0 && idx == 2 {
                    FaultAction::Die
                } else {
                    FaultAction::Continue
                }
            }));
        let engine = Engine::start(cfg).unwrap();
        let mut accepted = 0u64;
        for _ in 0..200 {
            engine.ingest(vec![3; 10]).unwrap();
            accepted += 10;
        }
        let snap = engine.shutdown();
        let m = engine.metrics();
        assert!(m.shards_lost >= 1, "death not detected: {m:?}");
        let surviving = snap.summary.total_weight();
        assert!(surviving <= accepted);
        // The respawned shard keeps absorbing, so the loss is bounded by
        // what one incarnation could hold: its pending delta (< 50 updates
        // per hand-off threshold) plus queued batches (4 × 10) plus the
        // batch it died on.
        let max_loss = 50 + 4 * 10 + 10;
        assert!(
            accepted - surviving <= max_loss,
            "lost {} > {max_loss}",
            accepted - surviving
        );
    }

    #[test]
    fn respawn_disabled_tombstones_the_shard() {
        let cfg = ServiceConfig::new(SummaryKind::Mg, 0.05)
            .shards(2)
            .respawn_lost_shards(false)
            .fault_plan(plan_fn(|shard, idx| {
                if shard == 0 && idx == 0 {
                    FaultAction::Die
                } else {
                    FaultAction::Continue
                }
            }));
        let engine = Engine::start(cfg).unwrap();
        for _ in 0..50 {
            engine.ingest(vec![1; 4]).unwrap();
        }
        // Give the dying worker time to process its first batch, then keep
        // ingesting: every batch must land on the surviving shard.
        std::thread::sleep(std::time::Duration::from_millis(20));
        for _ in 0..50 {
            engine.ingest(vec![1; 4]).unwrap();
        }
        let m = engine.metrics();
        engine.shutdown();
        assert_eq!(m.shards_lost, 1);
        assert!(m.retries >= 1);
    }

    #[test]
    fn all_shards_dead_is_a_typed_error() {
        let cfg = ServiceConfig::new(SummaryKind::Mg, 0.05)
            .shards(1)
            .respawn_lost_shards(false)
            .fault_plan(plan_fn(|_, idx| {
                if idx == 0 {
                    FaultAction::Die
                } else {
                    FaultAction::Continue
                }
            }));
        let engine = Engine::start(cfg).unwrap();
        // First batch reaches the queue; the worker dies on it.
        engine.ingest(vec![1]).unwrap();
        // Eventually every send fails and the engine reports total loss.
        let mut saw_all_lost = false;
        for _ in 0..1_000 {
            match engine.ingest(vec![2]) {
                Ok(()) => std::thread::sleep(std::time::Duration::from_millis(1)),
                Err(ServiceError::AllShardsLost) => {
                    saw_all_lost = true;
                    break;
                }
                Err(other) => panic!("unexpected {other:?}"),
            }
        }
        assert!(saw_all_lost);
        assert_eq!(engine.metrics().shards_lost, 1);
        // Queries still answer from the last published snapshot.
        let _ = engine.snapshot();
        engine.shutdown();
    }

    #[test]
    fn metrics_reads_are_monotone_under_concurrent_ingest() {
        // Hammer `metrics()` while four threads ingest: every counter in
        // successive reports must be monotone (each counter is a relaxed
        // atomic, but loads of the same counter never go backwards), and
        // the derived report must never observe impossible states like
        // more retries than batches+retries attempts.
        let engine = Engine::start(
            ServiceConfig::new(SummaryKind::Mg, 0.05)
                .shards(2)
                .delta_updates(256),
        )
        .unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let engine = Arc::clone(&engine);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut prev = engine.metrics();
                    let mut reads = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let m = engine.metrics();
                        assert!(m.updates >= prev.updates, "updates went backwards");
                        assert!(m.batches >= prev.batches, "batches went backwards");
                        assert!(m.merges >= prev.merges, "merges went backwards");
                        assert!(m.epoch >= prev.epoch, "epoch went backwards");
                        assert!(m.shards_lost >= prev.shards_lost);
                        assert!(m.frames_rejected >= prev.frames_rejected);
                        assert!(m.retries >= prev.retries);
                        prev = m;
                        reads += 1;
                    }
                    reads
                })
            })
            .collect();
        let writers: Vec<_> = (0..4)
            .map(|_| {
                let engine = Arc::clone(&engine);
                std::thread::spawn(move || {
                    for i in 0..200u64 {
                        engine.ingest(vec![i % 16; 50]).unwrap();
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            assert!(r.join().unwrap() > 0, "reader never ran");
        }
        engine.shutdown();
        let m = engine.metrics();
        assert_eq!(m.updates, 4 * 200 * 50);
        assert_eq!(m.shards_lost, 0);
    }

    #[test]
    fn telemetry_snapshot_tracks_engine_activity() {
        let engine = Engine::start(
            ServiceConfig::new(SummaryKind::Mg, 0.05)
                .shards(2)
                .delta_updates(100),
        )
        .unwrap();
        for _ in 0..40 {
            engine.ingest(vec![2; 25]).unwrap();
        }
        engine.flush().unwrap();
        let snap = engine.telemetry_snapshot();
        let absorbed: u64 = (0..2)
            .filter_map(|s| snap.histogram(&format!("ingest_batch_micros{{shard=\"{s}\"}}")))
            .map(|h| h.count)
            .sum();
        assert_eq!(absorbed, 40, "every batch absorb must be recorded");
        let waited: u64 = (0..2)
            .filter_map(|s| snap.histogram(&format!("queue_wait_micros{{shard=\"{s}\"}}")))
            .map(|h| h.count)
            .sum();
        assert_eq!(waited, 40, "every dequeue must record its queue wait");
        // 1000 updates at delta_updates=100 hand off at least once per
        // shard that saw data; each hand-off is one compactor merge.
        let merges = snap.histogram("compact_merge_micros").unwrap();
        assert!(merges.count >= 1);
        assert_eq!(snap.gauge("epoch"), Some(engine.snapshot().epoch as i64));
        assert_eq!(snap.counter("updates_total"), Some(1000));
        // After flush + idle workers every queue is empty.
        for s in 0..2 {
            assert_eq!(
                snap.gauge(&format!("queue_depth{{shard=\"{s}\"}}")),
                Some(0)
            );
        }
        engine.shutdown();
    }

    #[test]
    fn all_shards_lost_dumps_seed_stamped_flight_recording() {
        let dir = std::env::temp_dir().join("ms-engine-flight-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::env::set_var("MS_FLIGHT_DIR", &dir);
        let cfg = ServiceConfig::new(SummaryKind::Mg, 0.05)
            .shards(1)
            .seed(0xDEAD_BEEF)
            .respawn_lost_shards(false)
            .fault_plan(crate::fault::plan_fn(|_, idx| {
                if idx == 0 {
                    FaultAction::Die
                } else {
                    FaultAction::Continue
                }
            }));
        let engine = Engine::start(cfg).unwrap();
        engine.ingest(vec![1]).unwrap();
        let mut lost = false;
        for _ in 0..1_000 {
            match engine.ingest(vec![2]) {
                Ok(()) => std::thread::sleep(std::time::Duration::from_millis(1)),
                Err(ServiceError::AllShardsLost) => {
                    lost = true;
                    break;
                }
                Err(other) => panic!("unexpected {other:?}"),
            }
        }
        std::env::remove_var("MS_FLIGHT_DIR");
        assert!(lost);
        let dump = dir.join("flight-all-shards-lost-0xdeadbeef.json");
        let text = std::fs::read_to_string(&dump)
            .unwrap_or_else(|e| panic!("missing flight dump {}: {e}", dump.display()));
        assert!(text.contains("\"seed\": \"0xdeadbeef\""), "{text}");
        assert!(text.contains("worker_die"), "{text}");
        assert!(text.contains("all_shards_lost"), "{text}");
        engine.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compactor_stall_delays_but_preserves_data() {
        use std::sync::atomic::AtomicU64 as A;
        #[derive(Debug, Default)]
        struct SlowCompactor(A);
        impl crate::fault::FaultPlan for SlowCompactor {
            fn compactor_merge(&self, _merge_index: u64) -> u64 {
                self.0.fetch_add(1, Ordering::Relaxed);
                1
            }
        }
        let plan = Arc::new(SlowCompactor::default());
        let cfg = ServiceConfig::new(SummaryKind::Mg, 0.05)
            .shards(2)
            .delta_updates(100)
            .fault_plan(Arc::clone(&plan) as Arc<dyn crate::fault::FaultPlan>);
        let engine = Engine::start(cfg).unwrap();
        for _ in 0..20 {
            engine.ingest(vec![5; 100]).unwrap();
        }
        let snap = engine.shutdown();
        assert_eq!(snap.summary.total_weight(), 2000);
        assert!(plan.0.load(Ordering::Relaxed) >= 1, "stall never consulted");
    }
}

//! The sharded concurrent aggregation engine.
//!
//! Mergeability (PODS'12, Definition 1) is exactly what makes this design
//! correct: each of `N` worker threads absorbs its slice of the stream into
//! a thread-local *delta* summary, and a background compactor merges the
//! deltas — in whatever order the scheduler produces them — into one global
//! summary. Because the error guarantee survives arbitrary merge trees, the
//! concurrent engine answers queries with the same `εn` bound as a
//! single-threaded summary of the whole stream.
//!
//! Data flow:
//!
//! ```text
//! ingest(batch) ──round-robin──▶ worker 0..N   (bounded queue, backpressure)
//!                                │ local delta, handed off every
//!                                │ `delta_updates` updates
//!                                ▼
//!                             compactor ── merge ──▶ global summary
//!                                │ publish (epoch += 1)
//!                                ▼
//!                        Arc<Snapshot>  ◀── snapshot()/queries (lock-free
//!                                           reads of an immutable value)
//! ```
//!
//! Readers never block writers: a query clones the current `Arc<Snapshot>`
//! under a briefly-held lock and then works on the immutable snapshot;
//! the compactor builds the next snapshot off to the side and swaps the
//! `Arc` in.
//!
//! ## Failure model
//!
//! The engine is built to *degrade*, not die. A worker thread that exits
//! without warning (injected via [`crate::FaultPlan`], or a panic inside a
//! summary) loses only its un-handed-off delta and the batch it was
//! holding; every delta already merged by the compactor stays in the
//! published snapshot, which remains a valid `ε·n'` summary of the `n'`
//! updates that survived — that is the mergeability theorem doing systems
//! work. Ingest detects the dead shard on the next send, counts it in
//! [`MetricsReport::shards_lost`], reroutes the batch (counted in
//! [`MetricsReport::retries`]) and, when `respawn_lost_shards` is set,
//! restarts the worker with a fresh delta. Batches still queued on the
//! shard's ring at the moment of death stay there and are absorbed by the
//! respawned worker (they are dropped only when the shard is tombstoned).
//! Fallible operations return [`ServiceError`] instead of panicking, and
//! internal locks tolerate poisoning (a panicking worker cannot take
//! queries down with it).
//!
//! ## Hot path
//!
//! In steady state one `ingest(batch)` call performs **zero heap
//! allocations and zero shared-lock acquisitions**: the shard table is an
//! atomically swapped snapshot ([`ms_core::SwapCell`], one `Acquire` load
//! to read), each shard queue is a bounded lock-free ring
//! ([`ms_core::Ring`]), batch buffers and WAL encode buffers recycle
//! through [`ms_core::BufferPool`]s, and durable appends go through
//! leader–follower group commit ([`ms_store::GroupCommit`]) so the store
//! mutex is amortized across concurrent callers. See DESIGN.md §Hot path
//! for the per-operation budget.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::thread::JoinHandle;
use std::time::Instant;

use ms_core::rng::splitmix64;
use ms_core::wire::encode_u64_slice_into;
use ms_core::{
    BufferPool, FxHashMap, Mergeable, PushError, Ring, ServiceError, Summary, SwapCell, Wire,
};
use ms_obs::{RegistrySnapshot, Reservoir};
use ms_store::{GroupCommit, SegmentRecord, Store};

use crate::affinity::{AffinityPlan, AffinityStatus};
use crate::config::{DurabilityConfig, ServiceConfig, SummaryKind};
use crate::cube::SegmentCube;
use crate::deadline;
use crate::fault::FaultAction;
use crate::overload::Admission;
use crate::protocol::{AccuracyAudit, RangeMeta, SegmentReport, TraceDumpReport};
use crate::summary::{MergeLineage, ShardSummary};
use crate::telemetry::{timed, EngineTelemetry};

/// An immutable published view of the global summary.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Compaction epoch: how many publishes preceded this one.
    pub epoch: u64,
    /// The merged global summary as of this epoch.
    pub summary: ShardSummary,
    /// The merge tree that built `summary` and the weight its `ε·n`
    /// envelope applies to.
    pub lineage: MergeLineage,
    /// When this snapshot was published.
    pub published_at: Instant,
}

/// Point-in-time engine counters, cheap to copy over the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricsReport {
    /// Updates ingested by the workers.
    pub updates: u64,
    /// Batches accepted onto worker queues.
    pub batches: u64,
    /// Batches rejected by [`Engine::try_ingest`] because a queue was full.
    pub dropped: u64,
    /// Delta merges the compactor performed.
    pub merges: u64,
    /// Epoch of the current snapshot.
    pub epoch: u64,
    /// Age of the current snapshot in microseconds.
    pub snapshot_age_micros: u64,
    /// Total weight visible in the current snapshot.
    pub snapshot_weight: u64,
    /// Worker-death events detected (each respawn-or-tombstone counts once).
    pub shards_lost: u64,
    /// Wire frames the server rejected as malformed.
    pub frames_rejected: u64,
    /// Batches rerouted to another shard after a send to a dead one.
    pub retries: u64,
}

impl MetricsReport {
    /// Fold another node's report into this one, cluster-wide.
    ///
    /// Work counters (updates, batches, merges, weights, losses) sum:
    /// each node did its share and the totals are exact. `epoch` and
    /// `snapshot_age_micros` are per-node gauges, not work: epochs
    /// advance independently per engine (a sum would fabricate an epoch
    /// no node ever published), so the merged report keeps the highest
    /// epoch and the *stalest* snapshot age — a federated answer is only
    /// as fresh as its stalest contributor.
    pub fn merge_from(&mut self, other: &MetricsReport) {
        self.updates += other.updates;
        self.batches += other.batches;
        self.dropped += other.dropped;
        self.merges += other.merges;
        self.epoch = self.epoch.max(other.epoch);
        self.snapshot_age_micros = self.snapshot_age_micros.max(other.snapshot_age_micros);
        self.snapshot_weight += other.snapshot_weight;
        self.shards_lost += other.shards_lost;
        self.frames_rejected += other.frames_rejected;
        self.retries += other.retries;
    }
}

/// Raw items the audit reservoir holds for quantile audits.
const AUDIT_RESERVOIR: usize = 4096;
/// An item's exact count is tracked iff its seeded hash lands in this
/// mask's zero class — 1/16 of the item space, chosen by hash so the
/// audited set is adversary- and distribution-independent.
const AUDIT_SAMPLE_MASK: u64 = 0xF;

/// Ground truth for the accuracy self-audit, filled by workers as they
/// absorb batches.
struct AuditState {
    /// Seeded uniform sample of raw items (quantile audits).
    reservoir: Reservoir,
    /// Exact counts of the hash-chosen item subset (frequency audits).
    exact: FxHashMap<u64, u64>,
    /// Total item weight the audit observed.
    weight: u64,
}

/// The engine's audit plane: `None` inside unless [`ServiceConfig::audit`]
/// is set, so the default ingest path pays one branch per *batch* and
/// nothing per item. Workers call [`AuditPlane::observe`] on every batch
/// they absorb — observing at absorption (not admission) keeps the
/// ground truth aligned with what the summary actually saw: dropped and
/// rerouted batches never reach either.
struct AuditPlane {
    seed: u64,
    /// Quantile kinds sample ranks; frequency kinds count exactly.
    quantile: bool,
    state: Option<Mutex<AuditState>>,
}

impl AuditPlane {
    fn new(cfg: &ServiceConfig) -> AuditPlane {
        AuditPlane {
            seed: cfg.seed,
            quantile: cfg.kind == SummaryKind::HybridQuantile,
            state: cfg.audit.then(|| {
                Mutex::new(AuditState {
                    reservoir: Reservoir::new(AUDIT_RESERVOIR, cfg.seed),
                    exact: FxHashMap::default(),
                    weight: 0,
                })
            }),
        }
    }

    /// Is `item` in the exactly-counted audit subset for `seed`?
    fn audited(seed: u64, item: u64) -> bool {
        let mut s = seed ^ item;
        splitmix64(&mut s) & AUDIT_SAMPLE_MASK == 0
    }

    /// Observe one absorbed batch: one lock round per batch, no-op (a
    /// single branch) when the audit is disabled.
    fn observe(&self, items: &[u64]) {
        let Some(state) = &self.state else {
            return;
        };
        let mut s = lock(state);
        s.weight += items.len() as u64;
        if self.quantile {
            s.reservoir.observe_slice(items);
        } else {
            for &item in items {
                if AuditPlane::audited(self.seed, item) {
                    *s.exact.entry(item).or_insert(0) += 1;
                }
            }
        }
    }
}

#[derive(Default)]
struct Counters {
    updates: AtomicU64,
    batches: AtomicU64,
    dropped: AtomicU64,
    merges: AtomicU64,
    shards_lost: AtomicU64,
    frames_rejected: AtomicU64,
    retries: AtomicU64,
}

/// What recovery found and rebuilt when a durable engine started. All
/// damage counters come from CRC verification in `ms-store`: corrupted
/// records are reported here and *excluded* from the rebuilt state,
/// never silently ingested.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// WAL cut of the checkpoint set that was merged back (0 = none).
    pub checkpoint_seq: u64,
    /// Per-shard parts in that set.
    pub checkpoint_parts: usize,
    /// Total weight restored from the checkpoint.
    pub preloaded_weight: u64,
    /// WAL records newer than the checkpoint that were re-applied.
    pub replayed_records: u64,
    /// Total weight in those replayed records.
    pub replayed_weight: u64,
    /// Damaged WAL spans skipped (CRC mismatch, resynchronized).
    pub corrupt_records: u64,
    /// Checkpoint files discarded as damaged or incomplete.
    pub corrupt_checkpoints: u64,
    /// Torn bytes truncated from the end of the log.
    pub torn_bytes: u64,
    /// WAL records dropped as duplicates (idempotent replay).
    pub duplicate_records: u64,
    /// Highest valid WAL seq found on disk.
    pub wal_last_seq: u64,
    /// Sealed cube segments adopted from disk (0 when the cube is off).
    pub cube_segments_adopted: u64,
    /// Cube segment files discarded as damaged or non-contiguous; the
    /// batches they covered were rebuilt from the WAL tail.
    pub corrupt_cube_segments: u64,
    /// Wall-clock cost of the whole recovery (scan + merge + replay).
    pub duration_micros: u64,
    /// Human-readable damage notes from the store scan.
    pub notes: Vec<String>,
}

/// The engine's durability plane, present when the config names a data
/// directory. Owns the open store and the checkpointer thread.
struct Durable {
    cfg: DurabilityConfig,
    /// Ingest holds this for read while appending + enqueueing one batch;
    /// the checkpointer holds it for write while establishing the WAL cut,
    /// so "appended" and "visible to the flush barrier" stay in lockstep.
    pause: RwLock<()>,
    store: Mutex<Store>,
    /// Leader–follower group commit over `store`: concurrent appends
    /// share one store-lock round and at most one fsync per group.
    group: GroupCommit,
    batches_since_ckpt: AtomicU64,
    /// `None` once the checkpointer stopped. A trigger may carry an ack
    /// sender ([`Engine::checkpoint_now`] waits on it).
    trigger_tx: Mutex<Option<Sender<Option<Sender<()>>>>>,
    checkpointer: Mutex<Option<JoinHandle<()>>>,
    last_ckpt_seq: AtomicU64,
    last_ckpt_at: Mutex<Instant>,
    recovery: Mutex<RecoveryReport>,
}

enum WorkerMsg {
    /// A batch of items plus its enqueue time (for queue-wait histograms).
    Batch(Vec<u64>, Instant),
    Flush(Sender<()>),
}

enum CompactMsg {
    /// A delta handed off by the worker for `shard` (the index keys the
    /// compactor's per-shard checkpoint accumulators).
    Delta(usize, ShardSummary),
    Publish(Sender<()>),
    /// Request a consistent clone of the per-shard accumulators (empty
    /// when durability is off); also publishes the global summary.
    Checkpoint(Sender<Vec<ShardSummary>>),
    /// Shut the compactor down. The engine caches a plain `Sender` (no
    /// lock on the hand-off path), so the channel never disconnects by
    /// itself; this sentinel is the explicit stop signal.
    Stop,
}

/// One ingest shard in the lock-free table: its bounded ring, a generation
/// counter so concurrent senders agree on *which* incarnation died (only
/// the first failure against a generation is a death event), and whether a
/// worker is currently consuming the ring.
#[derive(Clone)]
struct TableSlot {
    gen: u64,
    ring: Arc<Ring<WorkerMsg>>,
    alive: bool,
}

/// The shard table. Readers get it from a [`SwapCell`] with one atomic
/// load; topology changes (death, respawn, drain) clone-and-swap a new
/// table under the engine's `table_write` mutex.
struct ShardTable {
    slots: Vec<TableSlot>,
}

impl ShardTable {
    /// A copy of this table with `shard` replaced by `slot`.
    fn with_slot(&self, shard: usize, slot: TableSlot) -> ShardTable {
        let mut slots = self.slots.clone();
        slots[shard] = slot;
        ShardTable { slots }
    }
}

/// Lock helpers: a poisoned lock means some thread panicked while holding
/// it. Every critical section here leaves the data structurally valid at
/// all times, so we keep serving instead of propagating the panic.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn read<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(|e| e.into_inner())
}

fn write<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(|e| e.into_inner())
}

/// The engine: owns the worker and compactor threads. Cheap to share as
/// `Arc<Engine>`; all public methods take `&self`.
pub struct Engine {
    cfg: ServiceConfig,
    /// Lock-free shard-table snapshot: the ingest hot path reads it with
    /// one `Acquire` load and never takes a lock.
    table: SwapCell<ShardTable>,
    /// Serializes table swaps (deaths, respawns, shutdown — all rare).
    table_write: Mutex<()>,
    /// Cumulative per-shard batch indices, shared with workers so a
    /// respawned worker continues the count (fault plans key off it).
    batch_indices: Arc<Vec<AtomicU64>>,
    /// Cached plain sender: cloned per worker spawn, never locked. The
    /// compactor exits on [`CompactMsg::Stop`], after which sends fail
    /// with a disconnect the callers map to [`ServiceError::Shutdown`].
    compact_tx: Sender<CompactMsg>,
    /// Recycled ingest batch buffers (`Vec<u64>`), one pool per shard.
    /// [`Engine::ingest_buffer`] hands out the next shard's buffer and
    /// each worker returns absorbed batches to its own pool, so shards
    /// stop contending for (and stealing) each other's slots — the global
    /// pool's reuse rate collapsed from 73% to 29% at 8 shards.
    pools: Vec<Arc<BufferPool<u64>>>,
    /// Recycled WAL encode buffers (`Vec<u8>`), refilled by the
    /// group-commit leader once a group is appended.
    wal_pool: Arc<BufferPool<u8>>,
    snapshot: RwLock<Arc<Snapshot>>,
    counters: Arc<Counters>,
    next_shard: AtomicUsize,
    stopped: AtomicBool,
    /// Held for the whole drain: a concurrent second `shutdown` blocks on
    /// it and then observes the fully drained snapshot, never a partial one.
    shutdown_lock: Mutex<()>,
    worker_handles: Mutex<Vec<JoinHandle<()>>>,
    compactor_handle: Mutex<Option<JoinHandle<()>>>,
    telemetry: Arc<EngineTelemetry>,
    /// Admission control / load shedding (permissive unless
    /// [`ServiceConfig::overload`] sets caps or watermarks).
    admission: Arc<Admission>,
    /// Accuracy self-audit ground truth (inert unless `cfg.audit`).
    audit: Arc<AuditPlane>,
    /// WAL + checkpoints; `None` for a purely in-memory engine.
    durable: Option<Durable>,
    /// The segment cube (time-windowed range queries); `None` unless
    /// [`ServiceConfig::segments`] is set.
    cube: Option<Arc<SegmentCube>>,
    /// Core-pinning plan for workers and the compactor (a recorded no-op
    /// unless [`ServiceConfig::pin_cores`] applies on this host).
    affinity: Arc<AffinityPlan>,
}

impl Engine {
    /// Start the worker and compactor threads for `cfg`. With durability
    /// configured this also opens the data directory, recovers its state
    /// (newest valid checkpoint merged back, WAL tail replayed — see
    /// [`Engine::recovery`]) and starts the checkpointer thread.
    pub fn start(cfg: ServiceConfig) -> Result<Arc<Engine>, ServiceError> {
        cfg.check()?;
        // Open the store and scan before any thread starts; the recovered
        // state is preloaded below once workers exist to receive it.
        let mut opened = None;
        if let Some(dcfg) = &cfg.durability {
            let store_cfg = dcfg.store_config().cube_segments(cfg.segments.is_some());
            opened = Some(Store::open(&store_cfg)?);
        }
        let cube = cfg
            .segments
            .clone()
            .map(|scfg| Arc::new(SegmentCube::new(cfg.epsilon, cfg.seed, scfg)));
        let counters = Arc::new(Counters::default());
        let telemetry = Arc::new(EngineTelemetry::new(cfg.shards, cfg.telemetry, cfg.seed));
        // Pressure reads the live per-shard queue-depth gauges; with
        // telemetry disabled the gauge list is empty and only the
        // in-flight caps shed.
        let admission = Arc::new(Admission::new(
            cfg.overload.clone(),
            telemetry.registry(),
            telemetry.queue_depth_gauges(),
            (cfg.shards * cfg.queue_depth) as u64,
        ));
        let audit = Arc::new(AuditPlane::new(&cfg));
        let (compact_tx, compact_rx) = mpsc::channel::<CompactMsg>();
        let batch_indices = Arc::new(
            (0..cfg.shards)
                .map(|_| AtomicU64::new(0))
                .collect::<Vec<_>>(),
        );

        let host_cpus = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let affinity = Arc::new(AffinityPlan::new(cfg.pin_cores, cfg.shards, host_cpus));
        if cfg.pin_cores && !affinity.enabled() {
            // The skip reason itself lives in `affinity_status()`; the
            // event marks when it happened for the flight recorder.
            telemetry.event(
                "affinity_skipped",
                &[
                    ("shards", cfg.shards as u64),
                    ("host_cpus", host_cpus as u64),
                ],
            );
        }

        // One pool per shard: capacity pool_buffers/shards (min 2 so a
        // small total still double-buffers), zero stays zero so disabling
        // recycling disables it everywhere.
        let per_shard_buffers = if cfg.pool_buffers == 0 {
            0
        } else {
            (cfg.pool_buffers / cfg.shards).max(2)
        };
        let pools: Vec<Arc<BufferPool<u64>>> = (0..cfg.shards)
            .map(|_| Arc::new(BufferPool::new(per_shard_buffers)))
            .collect();
        // WAL encode buffers only circulate on durable engines.
        let wal_pool = Arc::new(BufferPool::new(if cfg.durability.is_some() {
            cfg.pool_buffers
        } else {
            0
        }));

        let mut slots = Vec::with_capacity(cfg.shards);
        let mut worker_handles = Vec::with_capacity(cfg.shards);
        for (shard, pool) in pools.iter().enumerate() {
            let ring = Arc::new(Ring::with_capacity(cfg.queue_depth));
            let handle = spawn_worker(
                shard,
                cfg.clone(),
                Arc::clone(&ring),
                compact_tx.clone(),
                Arc::clone(&counters),
                Arc::clone(&batch_indices),
                Arc::clone(&telemetry),
                Arc::clone(pool),
                Arc::clone(&audit),
                Arc::clone(&affinity),
            )?;
            slots.push(TableSlot {
                gen: 0,
                ring,
                alive: true,
            });
            worker_handles.push(handle);
        }

        let (store, recovered) = match opened {
            Some((store, recovery)) => (Some(store), Some(recovery)),
            None => (None, None),
        };
        let durable = store.map(|store| {
            let ckpt_seq = recovered
                .as_ref()
                .and_then(|r| r.checkpoint.as_ref())
                .map_or(0, |c| c.wal_seq);
            let group = {
                let wal_pool = Arc::clone(&wal_pool);
                GroupCommit::new().with_recycler(move |buf| wal_pool.put(buf))
            };
            Durable {
                cfg: cfg.durability.clone().expect("checked by opened"),
                pause: RwLock::new(()),
                store: Mutex::new(store),
                group,
                batches_since_ckpt: AtomicU64::new(0),
                trigger_tx: Mutex::new(None),
                checkpointer: Mutex::new(None),
                last_ckpt_seq: AtomicU64::new(ckpt_seq),
                last_ckpt_at: Mutex::new(Instant::now()),
                recovery: Mutex::new(RecoveryReport::default()),
            }
        });

        let engine = Arc::new(Engine {
            snapshot: RwLock::new(Arc::new(Snapshot {
                epoch: 0,
                summary: ShardSummary::new(&cfg, usize::MAX),
                lineage: MergeLineage::default(),
                published_at: Instant::now(),
            })),
            cfg: cfg.clone(),
            table: SwapCell::new(ShardTable { slots }),
            table_write: Mutex::new(()),
            batch_indices,
            compact_tx,
            pools,
            wal_pool,
            counters,
            next_shard: AtomicUsize::new(0),
            stopped: AtomicBool::new(false),
            shutdown_lock: Mutex::new(()),
            worker_handles: Mutex::new(worker_handles),
            compactor_handle: Mutex::new(None),
            telemetry,
            admission,
            audit,
            durable,
            cube,
            affinity,
        });

        let compactor = spawn_compactor(Arc::clone(&engine), compact_rx)?;
        *lock(&engine.compactor_handle) = Some(compactor);

        if let Some(recovery) = recovered {
            let report = engine.preload(recovery)?;
            let d = engine.durable.as_ref().expect("recovered implies durable");
            engine.telemetry.event(
                "recovered",
                &[
                    ("checkpoint_seq", report.checkpoint_seq),
                    ("replayed", report.replayed_records),
                    (
                        "corrupt",
                        report.corrupt_records + report.corrupt_checkpoints,
                    ),
                ],
            );
            *lock(&d.recovery) = report;
            let (trigger_tx, trigger_rx) = mpsc::channel();
            *lock(&d.trigger_tx) = Some(trigger_tx);
            *lock(&d.checkpointer) = Some(spawn_checkpointer(Arc::clone(&engine), trigger_rx)?);
        }
        Ok(engine)
    }

    /// Merge the recovered checkpoint back into the engine and replay the
    /// WAL tail, validating everything *before* applying it: each part
    /// must merge cleanly with a fresh summary under this config (which
    /// catches kind, ε, and hash-seed mismatches), and each WAL payload
    /// must decode as a batch. Fails with a typed error rather than
    /// half-restoring.
    fn preload(&self, recovery: ms_store::Recovery) -> Result<RecoveryReport, ServiceError> {
        let started = Instant::now();
        let mut report = RecoveryReport {
            corrupt_records: recovery.corrupt_records,
            corrupt_checkpoints: recovery.corrupt_checkpoints,
            torn_bytes: recovery.torn_bytes,
            duplicate_records: recovery.duplicates,
            wal_last_seq: recovery.last_seq,
            corrupt_cube_segments: recovery.corrupt_cube_segments,
            notes: recovery.notes,
            ..RecoveryReport::default()
        };
        if let Some(cube) = &self.cube {
            let adopt = cube.adopt(&recovery.cube);
            report.cube_segments_adopted = adopt.adopted as u64;
            report.corrupt_cube_segments += adopt.dropped as u64;
            report.notes.extend(adopt.notes);
            self.persist_sealed(&[], &adopt.evicted)?;
        }
        if let Some(set) = recovery.checkpoint {
            report.checkpoint_seq = set.wal_seq;
            report.checkpoint_parts = set.parts.len();
            let mut parts = Vec::with_capacity(set.parts.len());
            for (i, bytes) in set.parts.iter().enumerate() {
                let part = ShardSummary::decode(bytes).map_err(|_| {
                    ServiceError::Config("checkpoint part does not decode as a shard summary")
                })?;
                let merged = ShardSummary::new(&self.cfg, i % self.cfg.shards)
                    .merge(part)
                    .map_err(|_| {
                        ServiceError::Config(
                            "checkpoint incompatible with configured kind/epsilon/seed",
                        )
                    })?;
                parts.push(merged);
            }
            for (i, part) in parts.into_iter().enumerate() {
                report.preloaded_weight += part.total_weight();
                self.compact_tx
                    .send(CompactMsg::Delta(i % self.cfg.shards, part))
                    .map_err(|_| ServiceError::Shutdown)?;
            }
        }
        // The tail reaches back to min(checkpoint cut, cube floor): the
        // cube replays every record above *its* floor to rebuild lost or
        // unsealed segments, while the global summary only re-applies
        // records the checkpoint has not already restored.
        for entry in &recovery.tail {
            let batch = Vec::<u64>::decode(&entry.payload).map_err(|_| {
                ServiceError::Config("WAL record does not decode as an ingest batch")
            })?;
            if let Some(cube) = &self.cube {
                let out = cube.record_at(entry.seq, &batch);
                self.persist_sealed(&out.sealed, &out.evicted)?;
            }
            if entry.seq > report.checkpoint_seq {
                report.replayed_records += 1;
                report.replayed_weight += batch.len() as u64;
                self.enqueue(batch)?;
            }
        }
        self.flush()?;
        report.duration_micros = started.elapsed().as_micros() as u64;
        Ok(report)
    }

    /// What recovery found when this engine started, or `None` for an
    /// in-memory engine.
    pub fn recovery(&self) -> Option<RecoveryReport> {
        self.durable.as_ref().map(|d| lock(&d.recovery).clone())
    }

    /// The configuration the engine was started with.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// A recycled buffer for building the next [`Engine::ingest`] batch:
    /// cleared, with its previous capacity intact, when the pool has one
    /// idle; freshly allocated otherwise. The buffer comes from the pool
    /// of the shard the next enqueue will route to, and that worker puts
    /// it back — so an ingest loop that takes its buffers from here
    /// reaches a per-shard steady state that allocates nothing at all.
    pub fn ingest_buffer(&self) -> Vec<u64> {
        let shard = self.next_shard.load(Ordering::Relaxed) % self.cfg.shards;
        self.pools[shard].get()
    }

    /// Aggregate buffer-pool traffic across all shard pools:
    /// `(reuses, misses, discards)` so far.
    pub fn pool_stats(&self) -> (u64, u64, u64) {
        self.pools.iter().fold((0, 0, 0), |(r, m, d), p| {
            (r + p.reuses(), m + p.misses(), d + p.discards())
        })
    }

    /// Per-shard buffer-pool traffic: `(reuses, misses, discards)` for
    /// each shard's pool, in shard order.
    pub fn shard_pool_stats(&self) -> Vec<(u64, u64, u64)> {
        self.pools
            .iter()
            .map(|p| (p.reuses(), p.misses(), p.discards()))
            .collect()
    }

    /// What the core-affinity runtime decided and did so far.
    pub fn affinity_status(&self) -> AffinityStatus {
        self.affinity.status()
    }

    /// True when no shard has a live worker.
    fn all_shards_dead(&self) -> bool {
        self.table.load().slots.iter().all(|s| !s.alive)
    }

    /// Handle the death of `shard` at generation `gen`: count it once,
    /// respawn (if configured and not shutting down) or tombstone the slot.
    fn note_dead_shard(&self, shard: usize, gen: u64) {
        let _topology = lock(&self.table_write);
        let table = self.table.load();
        let slot = &table.slots[shard];
        if slot.gen != gen {
            // Another thread already handled this incarnation's death.
            return;
        }
        let ring = Arc::clone(&slot.ring);
        // Release pairs with the Acquire load in `metrics`: a report
        // that observes engine state derived from this death (e.g. the
        // retried batch) also observes the incremented counter.
        self.counters.shards_lost.fetch_add(1, Ordering::Release);
        self.telemetry
            .event("shard_death", &[("shard", shard as u64), ("gen", gen)]);
        // `shutdown` sets `stopped` before taking `table_write`, so a
        // worker spawned under this lock is guaranteed to be seen (and
        // joined) by the drain.
        if self.cfg.respawn_lost_shards && !self.stopped.load(Ordering::Acquire) {
            // Reopen the ring *before* the worker starts: batches queued
            // at the moment of death stay inside and are absorbed by the
            // successor instead of being lost. (A dead ring pops its
            // retained items and then reports drained, so a worker
            // started first would exit immediately.)
            ring.revive();
            match spawn_worker(
                shard,
                self.cfg.clone(),
                Arc::clone(&ring),
                self.compact_tx.clone(),
                Arc::clone(&self.counters),
                Arc::clone(&self.batch_indices),
                Arc::clone(&self.telemetry),
                Arc::clone(&self.pools[shard]),
                Arc::clone(&self.audit),
                Arc::clone(&self.affinity),
            ) {
                Ok(handle) => {
                    self.telemetry
                        .event("shard_respawn", &[("shard", shard as u64)]);
                    self.table.swap(table.with_slot(
                        shard,
                        TableSlot {
                            gen: gen + 1,
                            ring,
                            alive: true,
                        },
                    ));
                    lock(&self.worker_handles).push(handle);
                    return;
                }
                Err(_) => {
                    // Could not respawn: fall through to the tombstone
                    // path; ingest keeps rerouting to surviving shards.
                    ring.mark_dead();
                }
            }
        }
        // Tombstone the slot. Drain the dead ring now: its batches are
        // lost either way, and a retained `Flush` ack sender would
        // otherwise keep a flush barrier waiting forever.
        self.table.swap(table.with_slot(
            shard,
            TableSlot {
                gen: gen + 1,
                ring: Arc::clone(&ring),
                alive: false,
            },
        ));
        while ring.try_pop().is_some() {}
        self.telemetry.queue_reset(shard);
    }

    /// Enqueue a batch on the next live shard, blocking while its queue is
    /// full (backpressure). A dead shard is counted, respawned if
    /// configured, and the batch rerouted. With durability enabled the
    /// batch is appended to the WAL (fsync'd per policy) *before* it is
    /// enqueued, so an acked batch is exactly as durable as the policy
    /// promises.
    pub fn ingest(&self, batch: Vec<u64>) -> Result<(), ServiceError> {
        if batch.is_empty() {
            return Ok(());
        }
        // A spent deadline budget means the caller has stopped waiting:
        // appending + enqueueing now is doomed work that only deepens the
        // queues. Shed typed instead.
        if deadline::expired() {
            self.admission.note_deadline_expired();
            return Err(ServiceError::Overloaded {
                retry_after_micros: self.admission.retry_after_micros(),
            });
        }
        let _pause = self.durable.as_ref().map(|d| read(&d.pause));
        self.record_and_append(&batch)?;
        self.enqueue(batch)
    }

    /// The durable front half of ingest. With the cube enabled, the WAL
    /// append runs inside the cube lock ([`SegmentCube::record_with`])
    /// so the cube's seq counter tracks the WAL seq exactly; segments
    /// sealed by this batch are persisted before the batch is enqueued.
    /// Without a cube this is a plain [`Engine::append_durable`].
    fn record_and_append(&self, batch: &[u64]) -> Result<(), ServiceError> {
        match &self.cube {
            Some(cube) => {
                let out = cube.record_with(batch, || self.append_durable(batch))?;
                if out.coarsened > 0 {
                    self.telemetry
                        .record_coarsen(out.coarsened, cube.health().max_tier);
                }
                self.persist_sealed(&out.sealed, &out.evicted)
            }
            None => self.append_durable(batch),
        }
    }

    /// Persist freshly sealed segments and delete evicted ones. No-op on
    /// engines without durability (the cube then lives purely in memory).
    fn persist_sealed(
        &self,
        sealed: &[SegmentRecord],
        evicted: &[u64],
    ) -> Result<(), ServiceError> {
        if sealed.is_empty() && evicted.is_empty() {
            return Ok(());
        }
        let Some(d) = &self.durable else {
            return Ok(());
        };
        let cube = self.cube.as_ref().expect("sealed segments imply a cube");
        let store = lock(&d.store);
        let Some(segs) = &store.segments else {
            return Ok(());
        };
        for rec in sealed {
            segs.write(rec)?;
            cube.note_persisted(rec.end_seq);
            self.telemetry.event(
                "segment_sealed",
                &[("id", rec.id), ("end_seq", rec.end_seq)],
            );
        }
        for &id in evicted {
            segs.remove(id)?;
        }
        Ok(())
    }

    /// Append one batch to the WAL via group commit and trigger a
    /// background checkpoint at the configured cadence. No-op for
    /// in-memory engines. The caller holds the checkpoint pause lock for
    /// read, so the append and the subsequent enqueue land on the same
    /// side of any checkpoint cut.
    ///
    /// The encode buffer comes from (and returns to) `wal_pool`, and the
    /// batch is encoded in place from the borrowed slice, so the durable
    /// hot path allocates nothing in steady state either.
    fn append_durable(&self, batch: &[u64]) -> Result<(), ServiceError> {
        let Some(d) = &self.durable else {
            return Ok(());
        };
        let mut payload = self.wal_pool.get();
        encode_u64_slice_into(&mut payload, batch);
        let outcome = d.group.append(&d.store, payload)?;
        self.telemetry.record_wal_group(
            outcome.led.groups,
            outcome.led.records,
            outcome.led.bytes,
            outcome.led.fsyncs,
        );
        let since = d.batches_since_ckpt.fetch_add(1, Ordering::Relaxed) + 1;
        if since % d.cfg.checkpoint_batches == 0 {
            if let Some(tx) = lock(&d.trigger_tx).as_ref() {
                let _ = tx.send(None);
            }
        }
        Ok(())
    }

    /// The enqueue half of [`Engine::ingest`]: route to a live shard with
    /// backpressure and dead-shard rerouting. Recovery replay calls this
    /// directly (the records are already in the WAL).
    fn enqueue(&self, batch: Vec<u64>) -> Result<(), ServiceError> {
        let shard_count = self.cfg.shards;
        let mut batch = batch;
        let mut failures = 0usize;
        loop {
            if self.stopped.load(Ordering::Acquire) {
                return Err(ServiceError::Shutdown);
            }
            let table = self.table.load();
            let shard = self.next_shard.fetch_add(1, Ordering::Relaxed) % shard_count;
            let slot = &table.slots[shard];
            if !slot.alive {
                failures += 1;
                if failures >= shard_count && self.all_shards_dead() {
                    return Err(self.all_shards_lost());
                }
                continue;
            }
            match slot.ring.push(WorkerMsg::Batch(batch, Instant::now())) {
                Ok(()) => {
                    self.counters.batches.fetch_add(1, Ordering::Relaxed);
                    self.telemetry.queue_pushed(shard);
                    return Ok(());
                }
                Err(WorkerMsg::Batch(b, _)) => {
                    batch = b;
                    self.note_dead_shard(shard, slot.gen);
                    self.counters.retries.fetch_add(1, Ordering::Release);
                    failures += 1;
                    if failures >= shard_count.saturating_mul(2) && self.all_shards_dead() {
                        return Err(self.all_shards_lost());
                    }
                }
                Err(WorkerMsg::Flush(_)) => unreachable!("push hands back what it was given"),
            }
        }
    }

    /// Enqueue a batch without blocking. A full queue counts the batch as
    /// dropped and returns [`ServiceError::Backpressure`]; a dead shard is
    /// rerouted like [`Engine::ingest`]. With durability enabled the WAL
    /// append happens first (write-ahead discipline), so a batch dropped
    /// for backpressure is still on disk and will be restored by the next
    /// recovery — the WAL acks writes, not queue admission.
    pub fn try_ingest(&self, batch: Vec<u64>) -> Result<(), ServiceError> {
        if batch.is_empty() {
            return Ok(());
        }
        if self.stopped.load(Ordering::Acquire) {
            return Err(ServiceError::Shutdown);
        }
        let _pause = self.durable.as_ref().map(|d| read(&d.pause));
        self.record_and_append(&batch)?;
        let shard_count = self.cfg.shards;
        let mut batch = batch;
        let mut attempts = 0usize;
        while attempts < shard_count.saturating_mul(2) {
            let table = self.table.load();
            let shard = self.next_shard.fetch_add(1, Ordering::Relaxed) % shard_count;
            let slot = &table.slots[shard];
            if !slot.alive {
                attempts += 1;
                if self.all_shards_dead() {
                    return Err(self.all_shards_lost());
                }
                continue;
            }
            match slot.ring.try_push(WorkerMsg::Batch(batch, Instant::now())) {
                Ok(()) => {
                    self.counters.batches.fetch_add(1, Ordering::Relaxed);
                    self.telemetry.queue_pushed(shard);
                    return Ok(());
                }
                Err(PushError::Full(WorkerMsg::Batch(b, _))) => {
                    self.counters.dropped.fetch_add(1, Ordering::Relaxed);
                    // The caller handed the buffer over; recycle it into
                    // the pool of the shard that rejected it.
                    self.pools[shard].put(b);
                    return Err(ServiceError::Backpressure);
                }
                Err(PushError::Closed(WorkerMsg::Batch(b, _))) => {
                    batch = b;
                    self.note_dead_shard(shard, slot.gen);
                    self.counters.retries.fetch_add(1, Ordering::Release);
                    attempts += 1;
                }
                Err(_) => unreachable!("try_push hands back what it was given"),
            }
        }
        Err(self.all_shards_lost())
    }

    /// Total shard loss is the engine's fatal state: dump the flight
    /// recorder (first occurrence only) so the failure ships with a trace.
    fn all_shards_lost(&self) -> ServiceError {
        self.telemetry.event("all_shards_lost", &[]);
        self.telemetry.dump_flight(self.cfg.seed, "all-shards-lost");
        ServiceError::AllShardsLost
    }

    /// Force every live worker to hand its delta to the compactor and
    /// publish a fresh snapshot containing all data ingested before this
    /// call. Dead shards are skipped (their loss is already accounted).
    ///
    /// Ordering argument: each worker pushes its delta onto the compactor
    /// queue *before* acking, and the publish barrier is enqueued after all
    /// acks, so the barrier drains behind every delta.
    pub fn flush(&self) -> Result<(), ServiceError> {
        if self.stopped.load(Ordering::Acquire) {
            return Err(ServiceError::Shutdown);
        }
        self.flush_workers();
        let (pub_tx, pub_rx) = mpsc::channel();
        if self.compact_tx.send(CompactMsg::Publish(pub_tx)).is_err() {
            return Err(ServiceError::Shutdown);
        }
        let _ = pub_rx.recv();
        Ok(())
    }

    /// Make every live worker hand its delta to the compactor and wait for
    /// the acks. Dead shards are skipped (their loss is already accounted).
    fn flush_workers(&self) {
        let (ack_tx, ack_rx) = mpsc::channel();
        let mut waiting = 0;
        let targets: Vec<(usize, u64, Arc<Ring<WorkerMsg>>)> = {
            let table = self.table.load();
            table
                .slots
                .iter()
                .enumerate()
                .filter(|(_, s)| s.alive)
                .map(|(i, s)| (i, s.gen, Arc::clone(&s.ring)))
                .collect()
        };
        for (shard, gen, ring) in targets {
            match ring.push(WorkerMsg::Flush(ack_tx.clone())) {
                Ok(()) => waiting += 1,
                Err(_) => self.note_dead_shard(shard, gen),
            }
        }
        drop(ack_tx);
        // A worker can die *after* our Flush landed on its ring; the ring
        // then retains the message (and its ack sender) for a successor.
        // Poll for unnoticed deaths while waiting so the respawn (which
        // acks the retained Flush) or the tombstone drain (which drops
        // it, disconnecting the channel) releases us.
        let mut received = 0;
        while received < waiting {
            match ack_rx.recv_timeout(std::time::Duration::from_millis(1)) {
                Ok(()) => received += 1,
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    let table = self.table.load();
                    for (shard, slot) in table.slots.iter().enumerate() {
                        if slot.alive && slot.ring.is_dead() {
                            self.note_dead_shard(shard, slot.gen);
                        }
                    }
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
        }
    }

    /// Write a checkpoint set now and wait for it to reach disk. Errors
    /// with `Config` when the engine has no data directory.
    pub fn checkpoint_now(&self) -> Result<(), ServiceError> {
        let Some(d) = &self.durable else {
            return Err(ServiceError::Config("durability is not enabled"));
        };
        let (ack_tx, ack_rx) = mpsc::channel();
        let sent = match lock(&d.trigger_tx).as_ref() {
            Some(tx) => tx.send(Some(ack_tx)).is_ok(),
            None => false,
        };
        if !sent {
            return Err(ServiceError::Shutdown);
        }
        ack_rx.recv().map_err(|_| ServiceError::Shutdown)
    }

    /// One checkpoint cycle, run on the checkpointer thread.
    ///
    /// Consistency argument: with the pause lock held for write, no ingest
    /// is between "appended to WAL" and "enqueued", so the cut `W =
    /// last_seq` covers exactly the enqueued batches; the flush barrier
    /// then pushes all of them through the workers into the compactor
    /// queue, and the `Checkpoint` message drains behind them — the
    /// accumulators it clones hold precisely the surviving data of seqs
    /// ≤ W. The lock is released before waiting, so ingest resumes while
    /// the compactor catches up and files are written.
    fn perform_checkpoint(&self) -> Result<(), ServiceError> {
        let Some(d) = &self.durable else {
            return Ok(());
        };
        if self.stopped.load(Ordering::Acquire) {
            return Ok(());
        }
        let (cut, parts_rx) = {
            let _pause = write(&d.pause);
            let cut = lock(&d.store).wal.last_seq();
            self.flush_workers();
            let (tx, rx) = mpsc::channel();
            if self.compact_tx.send(CompactMsg::Checkpoint(tx)).is_err() {
                return Err(ServiceError::Shutdown);
            }
            (cut, rx)
        };
        let parts = parts_rx.recv().map_err(|_| ServiceError::Shutdown)?;
        self.write_checkpoint(&parts, cut)
    }

    /// Persist `parts` as the checkpoint set for WAL cut `cut`, then prune
    /// older sets and the segments they cover. The WAL is fsync'd first so
    /// the set never claims a cut newer than what is durable.
    fn write_checkpoint(&self, parts: &[ShardSummary], cut: u64) -> Result<(), ServiceError> {
        let Some(d) = &self.durable else {
            return Ok(());
        };
        let encoded: Vec<Vec<u8>> = parts.iter().map(|p| p.encode()).collect();
        let epoch = self.snapshot().epoch;
        {
            let mut store = lock(&d.store);
            store.wal.sync()?;
            store.checkpoints.write_set(cut, epoch, &encoded)?;
            if let Some(floor) = store.checkpoints.prune_keep(d.cfg.keep_checkpoints)? {
                // The cube rebuilds lost segments from the WAL, so never
                // prune past the last *persisted* segment. A floor of 0
                // (no segment persisted yet) retains everything.
                let floor = match &self.cube {
                    Some(cube) => floor.min(cube.persisted_floor()),
                    None => floor,
                };
                store.wal.prune_covered(floor)?;
            }
        }
        d.last_ckpt_seq.store(cut, Ordering::Release);
        *lock(&d.last_ckpt_at) = Instant::now();
        self.telemetry.record_checkpoint();
        self.telemetry.event("checkpoint", &[("wal_seq", cut)]);
        Ok(())
    }

    /// Stop the checkpointer thread (idempotent). Must run before worker
    /// drain: the checkpointer's flush barrier needs live workers.
    fn stop_checkpointer(&self) {
        let Some(d) = &self.durable else {
            return;
        };
        drop(lock(&d.trigger_tx).take());
        if let Some(handle) = lock(&d.checkpointer).take() {
            let _ = handle.join();
        }
    }

    /// The current snapshot. The lock is held only to clone the `Arc`.
    /// Always answers, even after shutdown or a worker panic.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        Arc::clone(&read(&self.snapshot))
    }

    /// Answer a time-range query from the segment cube: merge the minimal
    /// covering segment set (open segment included when it overlaps) into
    /// one summary of family `kind`, per Definition 1. Returns the range
    /// metadata plus the merged summary, or `None` when no segment
    /// overlaps the window.
    pub fn range_query(
        &self,
        start_micros: u64,
        end_micros: u64,
        kind: SummaryKind,
    ) -> Result<(RangeMeta, Option<ShardSummary>), ServiceError> {
        let Some(cube) = &self.cube else {
            return Err(ServiceError::Config("segment cube is not enabled"));
        };
        let (meta, summary) = cube.query(start_micros, end_micros, kind);
        self.telemetry
            .record_range_covering(meta.segments_merged as u64);
        Ok((meta, summary))
    }

    /// Describe the cube's current segments (sealed and open).
    pub fn segment_report(&self) -> Result<SegmentReport, ServiceError> {
        let Some(cube) = &self.cube else {
            return Err(ServiceError::Config("segment cube is not enabled"));
        };
        Ok(cube.report())
    }

    /// The segment cube, when enabled — test and experiment seam.
    pub fn cube(&self) -> Option<&Arc<SegmentCube>> {
        self.cube.as_ref()
    }

    fn publish(&self, summary: ShardSummary, lineage: MergeLineage) {
        let mut guard = write(&self.snapshot);
        let epoch = guard.epoch + 1;
        let since_last = guard.published_at.elapsed().as_micros() as u64;
        *guard = Arc::new(Snapshot {
            epoch,
            summary,
            lineage,
            published_at: Instant::now(),
        });
        drop(guard);
        self.telemetry.record_publish(epoch, since_last);
    }

    /// Record a wire frame the server rejected as malformed.
    pub fn record_rejected_frame(&self) {
        // Release: see `metrics` for the pairing argument.
        self.counters
            .frames_rejected
            .fetch_add(1, Ordering::Release);
    }

    /// The engine's observability plane (latency histograms, queue-depth
    /// gauges, the flight recorder).
    pub fn telemetry(&self) -> &Arc<EngineTelemetry> {
        &self.telemetry
    }

    /// The admission controller the server consults before dispatch
    /// (permissive unless [`ServiceConfig::overload`] configures caps or
    /// watermarks).
    pub fn admission(&self) -> &Arc<Admission> {
        &self.admission
    }

    /// The telemetry registry snapshot with the engine's own counters and
    /// snapshot gauges folded in — the payload served for
    /// [`crate::Request::Telemetry`]. Mergeable like any other
    /// [`RegistrySnapshot`].
    pub fn telemetry_snapshot(&self) -> RegistrySnapshot {
        let m = self.metrics();
        let (pool_reuses, pool_misses, pool_discards) = self.pool_stats();
        let mut engine = RegistrySnapshot {
            counters: vec![
                ("batches_total".to_string(), m.batches),
                ("dropped_total".to_string(), m.dropped),
                ("frames_rejected_total".to_string(), m.frames_rejected),
                ("merges_total".to_string(), m.merges),
                ("pool_discards_total".to_string(), pool_discards),
                ("pool_misses_total".to_string(), pool_misses),
                ("pool_reuses_total".to_string(), pool_reuses),
                ("retries_total".to_string(), m.retries),
                ("shards_lost_total".to_string(), m.shards_lost),
                ("updates_total".to_string(), m.updates),
            ],
            gauges: vec![
                (
                    "snapshot_age_micros".to_string(),
                    m.snapshot_age_micros as i64,
                ),
                ("snapshot_weight".to_string(), m.snapshot_weight as i64),
            ],
            histograms: Vec::new(),
        };
        // Per-shard pool reuse: integer percent of gets served from the
        // shard's own pool, plus the raw reuse counter per shard.
        for (shard, (reuses, misses, _)) in self.shard_pool_stats().into_iter().enumerate() {
            let gets = reuses + misses;
            let pct = (reuses * 100).checked_div(gets).unwrap_or(0);
            engine
                .counters
                .push((format!("pool_reuses_total{{shard=\"{shard}\"}}"), reuses));
            engine
                .gauges
                .push((format!("pool_reuse_pct{{shard=\"{shard}\"}}"), pct as i64));
        }
        let affinity = self.affinity_status();
        engine
            .gauges
            .push(("affinity_enabled".to_string(), affinity.enabled as i64));
        engine.gauges.push((
            "affinity_pinned_threads".to_string(),
            affinity.pinned as i64,
        ));
        if let Some(d) = &self.durable {
            let recovery = lock(&d.recovery);
            engine.gauges.extend([
                (
                    "checkpoint_seq".to_string(),
                    d.last_ckpt_seq.load(Ordering::Acquire) as i64,
                ),
                (
                    "checkpoint_age_micros".to_string(),
                    lock(&d.last_ckpt_at).elapsed().as_micros() as i64,
                ),
                (
                    "wal_last_seq".to_string(),
                    lock(&d.store).wal.last_seq() as i64,
                ),
                (
                    "recovery_duration_micros".to_string(),
                    recovery.duration_micros as i64,
                ),
                (
                    "recovery_replayed_records".to_string(),
                    recovery.replayed_records as i64,
                ),
                (
                    "recovery_corrupt_records".to_string(),
                    (recovery.corrupt_records + recovery.corrupt_checkpoints) as i64,
                ),
            ]);
        }
        if let Some(cube) = &self.cube {
            let health = cube.health();
            self.telemetry.set_cube_health(
                health.sealed,
                health.open_age_micros,
                health.open_weight,
            );
            // Keep the tier gauge fresh even if no coarsen ran recently.
            self.telemetry.record_coarsen(0, health.max_tier);
        }
        self.telemetry.snapshot().merge(&engine)
    }

    /// The engine's flight-recorder rings as a wire-ready report — the
    /// payload served for [`crate::Request::TraceDump`].
    pub fn trace_dump(&self) -> TraceDumpReport {
        self.telemetry.trace_report()
    }

    /// Compare the published summary against the audit plane's ground
    /// truth and report the observed error next to the `eps·n` envelope
    /// the paper's Definition 1 promises. Requires
    /// [`ServiceConfig::audit`]; without it the report carries lineage
    /// only (`audit_weight == 0`, trivially within bound).
    ///
    /// Frequency families keep *exact* counts for a deterministic
    /// hash-chosen 1-in-16 subset of the key space, so the observed
    /// error there is a true point-query error and must sit inside
    /// `eps·n`. The quantile family keeps a seeded reservoir; its rank
    /// comparison is itself an estimate, so the report adds a
    /// `sampling_slack` term (`3n/sqrt(len)`) and checks the bound
    /// against envelope + slack. Both kinds also add any weight the
    /// audit plane never saw (checkpoint preload, lost shards) as
    /// slack, since those items reached only one side of the
    /// comparison.
    pub fn accuracy_audit(&self) -> AccuracyAudit {
        let snap = self.snapshot();
        let lineage = snap.lineage;
        let eps = self.cfg.epsilon;
        let mut report = AccuracyAudit {
            kind: self.cfg.kind.label().to_string(),
            epsilon: eps,
            weight: lineage.weight,
            envelope: lineage.envelope(eps),
            merges: lineage.merges,
            depth: lineage.depth,
            audit_weight: 0,
            audited_items: 0,
            reservoir_len: 0,
            observed_error: 0.0,
            sampling_slack: 0.0,
            within_bound: true,
            nodes: 1,
        };
        let Some(state) = &self.audit.state else {
            return report;
        };
        let state = lock(state);
        report.audit_weight = state.weight;
        // Weight that reached the summary but not the audit plane (or
        // vice versa) — checkpoint preload, recovered WAL, lost shards —
        // can legitimately move the comparison by up to eps·|delta| plus
        // the raw delta itself for exact-count keys.
        let unseen = lineage.weight.abs_diff(state.weight) as f64;
        if self.cfg.kind == SummaryKind::HybridQuantile {
            report.reservoir_len = state.reservoir.len() as u64;
            let sample = state.reservoir.sample();
            let mut worst = 0.0f64;
            for &v in sample {
                let est = snap.summary.rank(v).unwrap_or(0) as f64;
                let truth = state.reservoir.scaled_rank(v) as f64;
                worst = worst.max((est - truth).abs());
            }
            report.observed_error = worst;
            if !sample.is_empty() {
                report.sampling_slack = 3.0 * state.weight as f64 / (sample.len() as f64).sqrt();
            }
            report.sampling_slack += unseen;
        } else {
            report.audited_items = state.exact.len() as u64;
            let mut worst = 0.0f64;
            for (&item, &count) in state.exact.iter() {
                let est = snap.summary.point(item).unwrap_or(0) as f64;
                worst = worst.max((est - count as f64).abs());
            }
            report.observed_error = worst;
            report.sampling_slack = unseen;
        }
        report.within_bound = report.observed_error <= report.envelope + report.sampling_slack;
        report
    }

    /// Current counters plus snapshot-derived gauges.
    ///
    /// Consistency: each counter is individually monotone, and the
    /// `shards_lost` / `frames_rejected` / `retries` increments use
    /// `Release` paired with the `Acquire` loads here, so a report
    /// observes every such event that happened-before anything else it
    /// observes. The report is still not a consistent cut across *all*
    /// fields — `updates` keeps advancing while the snapshot fields are
    /// read — which is inherent to lock-free counters and fine for
    /// monitoring; tests may only assume per-field monotonicity.
    pub fn metrics(&self) -> MetricsReport {
        let snap = self.snapshot();
        MetricsReport {
            updates: self.counters.updates.load(Ordering::Relaxed),
            batches: self.counters.batches.load(Ordering::Relaxed),
            dropped: self.counters.dropped.load(Ordering::Relaxed),
            merges: self.counters.merges.load(Ordering::Relaxed),
            epoch: snap.epoch,
            snapshot_age_micros: snap.published_at.elapsed().as_micros() as u64,
            snapshot_weight: snap.summary.total_weight(),
            shards_lost: self.counters.shards_lost.load(Ordering::Acquire),
            frames_rejected: self.counters.frames_rejected.load(Ordering::Acquire),
            retries: self.counters.retries.load(Ordering::Acquire),
        }
    }

    /// Drain everything, stop all threads, and return the final snapshot.
    /// Idempotent; later calls just return the current snapshot.
    ///
    /// Clean shutdown is lossless: closing the worker queues (rather than
    /// sending a sentinel message) lets each worker drain *every* queued
    /// batch — including ones enqueued by racing ingest calls that were
    /// acked while shutdown was starting — and hand off its delta when the
    /// queue disconnects. A durable engine then writes a final checkpoint
    /// and fsyncs the WAL regardless of policy, so a restart restores
    /// exactly what this snapshot holds.
    pub fn shutdown(&self) -> Arc<Snapshot> {
        let _draining = lock(&self.shutdown_lock);
        if self.stopped.swap(true, Ordering::AcqRel) {
            // Whoever held the lock before us finished the drain.
            return self.snapshot();
        }
        // The checkpointer's flush barrier needs live workers: stop it
        // before touching them.
        self.stop_checkpointer();
        self.drain_workers();
        if let Some(d) = &self.durable {
            // All deltas are on the compactor queue; the Checkpoint
            // message drains behind them and snapshots the accumulators.
            let (tx, rx) = mpsc::channel();
            if self.compact_tx.send(CompactMsg::Checkpoint(tx)).is_ok() {
                if let Ok(parts) = rx.recv() {
                    let cut = lock(&d.store).wal.last_seq();
                    if self.write_checkpoint(&parts, cut).is_err() {
                        self.telemetry.event("final_checkpoint_failed", &[]);
                    }
                }
            }
        }
        // Publish whatever the compactor accumulated, then stop it.
        let (pub_tx, pub_rx) = mpsc::channel();
        if self.compact_tx.send(CompactMsg::Publish(pub_tx)).is_ok() {
            let _ = pub_rx.recv();
        }
        let _ = self.compact_tx.send(CompactMsg::Stop);
        if let Some(handle) = lock(&self.compactor_handle).take() {
            let _ = handle.join();
        }
        self.snapshot()
    }

    /// Simulate a hard crash (`kill -9`): stop every thread *without* the
    /// final flush, checkpoint, or fsync that [`Engine::shutdown`]
    /// performs. On-disk state is whatever the fsync policy already made
    /// durable — exactly the state recovery must be able to live with.
    /// The crash/recovery fault suite drives this; it is safe (if
    /// pointless) to call in production.
    pub fn abort(&self) {
        let _draining = lock(&self.shutdown_lock);
        if self.stopped.swap(true, Ordering::AcqRel) {
            return;
        }
        self.stop_checkpointer();
        self.drain_workers();
        // Stop the compactor without a final publish: queries keep
        // answering from the last published snapshot, like a real crash
        // survivor's client would have seen.
        let _ = self.compact_tx.send(CompactMsg::Stop);
        if let Some(handle) = lock(&self.compactor_handle).take() {
            let _ = handle.join();
        }
    }

    /// Close every worker ring and join the workers. Each worker drains
    /// its remaining queued batches and hands off its delta when its ring
    /// reports empty-and-closed.
    fn drain_workers(&self) {
        let rings: Vec<Arc<Ring<WorkerMsg>>> = {
            let _topology = lock(&self.table_write);
            let table = self.table.load();
            // Bump every generation while closing, so a racing
            // `note_dead_shard` against the old incarnations mismatches
            // and does not count shutdown as shard deaths.
            let slots: Vec<TableSlot> = table
                .slots
                .iter()
                .map(|s| TableSlot {
                    gen: s.gen + 1,
                    ring: Arc::clone(&s.ring),
                    alive: false,
                })
                .collect();
            let rings = slots.iter().map(|s| Arc::clone(&s.ring)).collect();
            self.table.swap(ShardTable { slots });
            rings
        };
        for ring in &rings {
            ring.close();
        }
        for handle in lock(&self.worker_handles).drain(..) {
            let _ = handle.join();
        }
    }
}

/// Marks the worker's ring dead if the worker exits without finishing a
/// clean drain — an injected death or a panic inside a summary. Producers
/// then get `Closed` (and reroute) instead of blocking forever, and the
/// engine revives the ring for a respawned successor.
struct RingGuard {
    ring: Arc<Ring<WorkerMsg>>,
    clean: bool,
}

impl Drop for RingGuard {
    fn drop(&mut self) {
        if !self.clean {
            self.ring.mark_dead();
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn spawn_worker(
    shard: usize,
    cfg: ServiceConfig,
    ring: Arc<Ring<WorkerMsg>>,
    compact_tx: Sender<CompactMsg>,
    counters: Arc<Counters>,
    batch_indices: Arc<Vec<AtomicU64>>,
    telemetry: Arc<EngineTelemetry>,
    pool: Arc<BufferPool<u64>>,
    audit: Arc<AuditPlane>,
    affinity: Arc<AffinityPlan>,
) -> std::io::Result<JoinHandle<()>> {
    std::thread::Builder::new()
        .name(format!("ms-worker-{shard}"))
        .spawn(move || {
            let trace = telemetry.recorder().register(&format!("worker-{shard}"));
            if let Some(cpu) = affinity.pin_worker(shard) {
                trace.event("pinned", &[("cpu", cpu as u64)]);
            }
            let mut sentinel = RingGuard {
                ring: Arc::clone(&ring),
                clean: false,
            };
            let mut delta = ShardSummary::new(&cfg, shard);
            let mut pending = 0usize;
            let hand_off = |delta: &mut ShardSummary, pending: &mut usize| {
                if *pending > 0 {
                    let full = std::mem::replace(delta, ShardSummary::new(&cfg, shard));
                    let _ = compact_tx.send(CompactMsg::Delta(shard, full));
                    *pending = 0;
                }
            };
            while let Some(msg) = ring.pop_wait() {
                match msg {
                    WorkerMsg::Batch(items, enqueued) => {
                        telemetry.queue_popped(shard);
                        telemetry.record_queue_wait(shard, enqueued.elapsed().as_micros() as u64);
                        let index = batch_indices[shard].fetch_add(1, Ordering::Relaxed);
                        match cfg.fault_plan.worker_batch(shard, index) {
                            FaultAction::Continue => {}
                            FaultAction::StallMs(ms) => {
                                trace.event("stall", &[("ms", ms)]);
                                std::thread::sleep(std::time::Duration::from_millis(ms));
                            }
                            FaultAction::Die => {
                                // Crash semantics: the pending delta and
                                // the batch in hand are lost; deltas
                                // already handed off survive in the global
                                // summary, and batches still on the ring
                                // survive for a respawned successor.
                                trace.event(
                                    "worker_die",
                                    &[("batch_index", index), ("pending", pending as u64)],
                                );
                                return;
                            }
                        }
                        counters
                            .updates
                            .fetch_add(items.len() as u64, Ordering::Relaxed);
                        // Ground truth observes exactly what the delta
                        // absorbs: dropped or fault-killed batches reach
                        // neither side of the accuracy comparison.
                        audit.observe(&items);
                        pending += items.len();
                        // Batched absorb: Count-Min goes through the
                        // hash-then-update kernel, other families through
                        // their (order-preserving) per-item loops.
                        let (_, micros) = timed(|| delta.update_batch(&items));
                        // The absorbed batch buffer goes back to the pool
                        // for the next ingest caller.
                        pool.put(items);
                        telemetry.record_ingest_batch(shard, micros);
                        if pending >= cfg.delta_updates {
                            let handed = pending as u64;
                            let (_, micros) = timed(|| hand_off(&mut delta, &mut pending));
                            trace.event("hand_off", &[("updates", handed), ("micros", micros)]);
                        }
                    }
                    WorkerMsg::Flush(ack) => {
                        hand_off(&mut delta, &mut pending);
                        let _ = ack.send(());
                    }
                }
            }
            // The ring closed and drained: everything that was ever acked
            // onto this shard — including pushes that were in flight when
            // the close landed — has been absorbed above. Hand off the
            // final delta; shutdown publishes it.
            hand_off(&mut delta, &mut pending);
            sentinel.clean = true;
        })
}

fn spawn_compactor(
    engine: Arc<Engine>,
    rx: Receiver<CompactMsg>,
) -> std::io::Result<JoinHandle<()>> {
    std::thread::Builder::new()
        .name("ms-compactor".to_string())
        .spawn(move || {
            let cfg = engine.cfg.clone();
            let trace = engine.telemetry.recorder().register("compactor");
            if let Some(cpu) = engine.affinity.pin_compactor() {
                trace.event("pinned", &[("cpu", cpu as u64)]);
            }
            let mut global = ShardSummary::new(&cfg, usize::MAX);
            // With durability on, the compactor also folds each shard's
            // deltas into a per-shard accumulator — the checkpointable
            // decomposition of `global`. Mergeability makes the double
            // bookkeeping sound: global == merge(accumulators) under any
            // arrival order. In-memory engines skip the extra merges.
            let mut accumulators: Option<Vec<ShardSummary>> = engine.durable.as_ref().map(|_| {
                (0..cfg.shards)
                    .map(|s| ShardSummary::new(&cfg, s))
                    .collect()
            });
            let mut merge_index = 0u64;
            // Lineage mirrors the left-deep fold below: after k deltas,
            // merges == depth == k and weight == global.total_weight().
            let mut lineage = MergeLineage::leaf(global.total_weight());
            // How many backlogged deltas one compaction pass will fuse.
            // Under steady load the channel is empty and each delta is
            // folded as it arrives, exactly as before; under backlog the
            // linear families (Count-Min) fold the whole batch in a
            // single pass over the global table.
            const MAX_COMPACT_FUSE: usize = 16;
            let mut carried: Option<CompactMsg> = None;
            loop {
                let msg = match carried.take() {
                    Some(msg) => msg,
                    None => match rx.recv() {
                        Ok(msg) => msg,
                        Err(_) => break,
                    },
                };
                match msg {
                    CompactMsg::Delta(shard, delta) => {
                        // Drain whatever backlog is already queued, stopping
                        // at the first non-delta message so barriers keep
                        // their channel ordering.
                        let mut batch = vec![(shard, delta)];
                        while batch.len() < MAX_COMPACT_FUSE {
                            match rx.try_recv() {
                                Ok(CompactMsg::Delta(s, d)) => batch.push((s, d)),
                                Ok(other) => {
                                    carried = Some(other);
                                    break;
                                }
                                Err(_) => break,
                            }
                        }
                        let fused = batch.len() as u64;
                        let mut weights = Vec::with_capacity(batch.len());
                        for (shard, delta) in &batch {
                            let stall_ms = cfg.fault_plan.compactor_merge(merge_index);
                            merge_index += 1;
                            if stall_ms > 0 {
                                trace.event("stall", &[("ms", stall_ms)]);
                                std::thread::sleep(std::time::Duration::from_millis(stall_ms));
                            }
                            if let Some(accs) = accumulators.as_mut() {
                                let _ = accs[*shard].merge_in_place(delta.clone());
                            }
                            weights.push(delta.total_weight());
                        }
                        let mut span = ms_obs::span!(trace, "compact", merge_index = merge_index);
                        if fused > 1 {
                            span.field("fused", fused);
                        }
                        // In-place: the global summary's storage is reused
                        // across merges instead of being cloned per delta;
                        // linear families fold the whole batch in one pass.
                        let deltas: Vec<ShardSummary> = batch.into_iter().map(|(_, d)| d).collect();
                        let (results, micros) = timed(|| global.merge_in_place_many(deltas));
                        let mut any_merged = false;
                        for (result, weight) in results.iter().zip(weights) {
                            if result.is_ok() {
                                // Deltas come from ShardSummary::new under
                                // the same config, so kinds/ε always match;
                                // a failure here would be an engine bug and
                                // leaves `global` untouched for that delta.
                                lineage.absorb(MergeLineage::leaf(weight));
                                engine.counters.merges.fetch_add(1, Ordering::Relaxed);
                                any_merged = true;
                            }
                        }
                        if any_merged {
                            // The compactor folds deltas left-deep, so the
                            // snapshot's merge tree is `merge_index` deep.
                            engine.telemetry.record_compact_merge(micros, merge_index);
                            engine.publish(global.clone(), lineage);
                            span.field("epoch", engine.snapshot().epoch);
                        }
                    }
                    CompactMsg::Publish(ack) => {
                        engine.publish(global.clone(), lineage);
                        let _ = ack.send(());
                    }
                    CompactMsg::Checkpoint(ack) => {
                        engine.publish(global.clone(), lineage);
                        let _ = ack.send(accumulators.clone().unwrap_or_default());
                    }
                    CompactMsg::Stop => break,
                }
            }
        })
}

/// The checkpointer thread: waits for cadence triggers (sent by ingest
/// every `checkpoint_batches` batches) or explicit
/// [`Engine::checkpoint_now`] requests, and runs one checkpoint cycle per
/// trigger. Exits when the trigger channel closes (shutdown/abort).
fn spawn_checkpointer(
    engine: Arc<Engine>,
    rx: Receiver<Option<Sender<()>>>,
) -> std::io::Result<JoinHandle<()>> {
    std::thread::Builder::new()
        .name("ms-checkpointer".to_string())
        .spawn(move || {
            for trigger in rx {
                if let Err(e) = engine.perform_checkpoint() {
                    // A failed checkpoint is not fatal: the WAL still has
                    // everything. Record it and keep serving.
                    engine.telemetry.event("checkpoint_failed", &[]);
                    let _ = e;
                }
                if let Some(ack) = trigger {
                    let _ = ack.send(());
                }
            }
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SummaryKind;
    use crate::fault::plan_fn;

    #[test]
    fn ingest_flush_query_roundtrip() {
        let engine = Engine::start(ServiceConfig::new(SummaryKind::Mg, 0.05).shards(2)).unwrap();
        for chunk in (0..10_000u64).collect::<Vec<_>>().chunks(100) {
            engine
                .ingest(chunk.iter().map(|&v| v % 10).collect())
                .unwrap();
        }
        engine.flush().unwrap();
        let snap = engine.snapshot();
        assert_eq!(snap.summary.total_weight(), 10_000);
        assert!(snap.epoch >= 1);
        let m = engine.metrics();
        assert_eq!(m.updates, 10_000);
        assert_eq!(m.batches, 100);
        assert_eq!(m.dropped, 0);
        assert_eq!(m.snapshot_weight, 10_000);
        assert_eq!(m.shards_lost, 0);
        assert_eq!(m.retries, 0);
        engine.shutdown();
    }

    #[test]
    fn shutdown_drains_pending_deltas() {
        let engine =
            Engine::start(ServiceConfig::new(SummaryKind::CountMin, 0.01).shards(3)).unwrap();
        for _ in 0..30 {
            engine.ingest(vec![7; 50]).unwrap();
        }
        // No flush: shutdown itself must make all 1500 updates visible.
        let snap = engine.shutdown();
        assert_eq!(snap.summary.total_weight(), 1500);
        assert_eq!(snap.summary.point(7), Some(1500));
        // Idempotent.
        assert_eq!(engine.shutdown().summary.total_weight(), 1500);
        assert_eq!(engine.ingest(vec![1]), Err(ServiceError::Shutdown));
        assert_eq!(engine.flush(), Err(ServiceError::Shutdown));
        assert_eq!(engine.try_ingest(vec![1]), Err(ServiceError::Shutdown));
    }

    #[test]
    fn try_ingest_counts_drops_when_queues_fill() {
        let cfg = ServiceConfig::new(SummaryKind::Mg, 0.1)
            .shards(1)
            .queue_depth(1);
        let engine = Engine::start(cfg).unwrap();
        let mut accepted = 0u64;
        let mut rejected = 0u64;
        for _ in 0..2_000 {
            match engine.try_ingest(vec![1; 512]) {
                Ok(()) => accepted += 1,
                Err(ServiceError::Backpressure) => rejected += 1,
                Err(other) => panic!("unexpected {other:?}"),
            }
        }
        let m = engine.metrics();
        assert_eq!(m.batches, accepted);
        assert_eq!(m.dropped, rejected);
        engine.shutdown();
        assert_eq!(engine.metrics().updates, accepted * 512);
    }

    #[test]
    fn pool_disabled_degrades_to_plain_allocation_with_counted_misses() {
        let cfg = ServiceConfig::new(SummaryKind::Mg, 0.05)
            .shards(2)
            .pool_buffers(0);
        let engine = Engine::start(cfg).unwrap();
        for _ in 0..50 {
            let mut batch = engine.ingest_buffer();
            batch.extend_from_slice(&[7; 100]);
            engine.ingest(batch).unwrap();
        }
        let (reuses, misses, _) = engine.pool_stats();
        assert_eq!(reuses, 0, "a zero-slot pool cannot serve reuses");
        assert!(misses >= 50, "every get must be a counted miss");
        let snap = engine.shutdown();
        assert_eq!(snap.summary.total_weight(), 5_000);
    }

    #[test]
    fn backpressure_recycles_the_rejected_buffer_into_the_pool() {
        let cfg = ServiceConfig::new(SummaryKind::Mg, 0.1)
            .shards(1)
            .queue_depth(1)
            .pool_buffers(4);
        let engine = Engine::start(cfg).unwrap();
        let mut rejected = 0u64;
        for _ in 0..2_000 {
            let mut batch = engine.ingest_buffer();
            batch.extend_from_slice(&[1; 512]);
            match engine.try_ingest(batch) {
                Ok(()) => {}
                Err(ServiceError::Backpressure) => rejected += 1,
                Err(other) => panic!("unexpected {other:?}"),
            }
        }
        assert!(rejected > 0, "queue never filled");
        // A rejected batch hands its buffer straight back to the pool, so
        // nearly every get is a reuse; if rejection dropped buffers on the
        // floor instead, every get after the bootstrap would be a miss.
        let (reuses, misses, _) = engine.pool_stats();
        assert!(
            misses < 200,
            "rejected buffers were not recycled (misses={misses}, rejected={rejected})"
        );
        assert!(reuses > 1_800, "pool served {reuses} of 2000 gets");
        engine.shutdown();
    }

    #[test]
    fn per_shard_pools_serve_a_multi_shard_ingest_loop() {
        // Default pool_buffers (512) gives each shard 128 slots — enough
        // to cover a full ring (queue_depth 64) of in-flight batches.
        let cfg = ServiceConfig::new(SummaryKind::Mg, 0.05).shards(4);
        let engine = Engine::start(cfg).unwrap();
        for _ in 0..2_000 {
            let mut batch = engine.ingest_buffer();
            batch.extend_from_slice(&[3; 64]);
            engine.ingest(batch).unwrap();
        }
        engine.flush().unwrap();
        let per_shard = engine.shard_pool_stats();
        assert_eq!(per_shard.len(), 4);
        let (reuses, misses, discards) = engine.pool_stats();
        let summed = per_shard
            .iter()
            .fold((0, 0, 0), |(r, m, d), s| (r + s.0, m + s.1, d + s.2));
        assert_eq!((reuses, misses, discards), summed);
        // Round-robin ingest keeps each buffer circulating within its own
        // shard's pool, so the large majority of gets are reuses (the
        // misses are the warm-up allocations while batches are in flight).
        assert!(
            reuses > 1_200,
            "per-shard pools served only {reuses} of 2000 gets (misses={misses})"
        );
        for (shard, (r, m, _)) in per_shard.iter().enumerate() {
            assert!(r + m > 0, "shard {shard} pool saw no traffic");
        }
        engine.shutdown();
    }

    #[test]
    fn telemetry_snapshot_reports_per_shard_pool_reuse_and_affinity() {
        let cfg = ServiceConfig::new(SummaryKind::Mg, 0.05).shards(2);
        let engine = Engine::start(cfg).unwrap();
        for _ in 0..100 {
            let mut batch = engine.ingest_buffer();
            batch.extend_from_slice(&[9; 32]);
            engine.ingest(batch).unwrap();
        }
        engine.flush().unwrap();
        let snap = engine.telemetry_snapshot();
        for shard in 0..2 {
            let reuse_key = format!("pool_reuses_total{{shard=\"{shard}\"}}");
            let pct_key = format!("pool_reuse_pct{{shard=\"{shard}\"}}");
            assert!(snap.counters.iter().any(|(k, _)| *k == reuse_key));
            let (_, pct) = snap
                .gauges
                .iter()
                .find(|(k, _)| *k == pct_key)
                .expect("per-shard reuse pct gauge");
            assert!((0..=100).contains(pct), "{pct_key} = {pct}");
        }
        // pin_cores defaults off: the affinity gauges report a no-op.
        let (_, enabled) = snap
            .gauges
            .iter()
            .find(|(k, _)| k == "affinity_enabled")
            .expect("affinity gauge");
        assert_eq!(*enabled, 0);
        assert!(!engine.affinity_status().requested);
        engine.shutdown();
    }

    #[test]
    fn pin_cores_on_an_undersized_host_is_a_recorded_noop() {
        // 64 shards exceed any CI host's CPU count, so the plan must skip
        // with a reason instead of stacking workers on one core.
        let cfg = ServiceConfig::new(SummaryKind::CountMin, 0.05)
            .shards(64)
            .pin_cores(true);
        let engine = Engine::start(cfg).unwrap();
        engine.ingest((0..100).collect()).unwrap();
        engine.flush().unwrap();
        let status = engine.affinity_status();
        assert!(status.requested);
        if !status.enabled {
            let reason = status.skip_reason.expect("skip must carry a reason");
            assert!(reason.contains("host_cpus"), "{reason}");
        }
        assert_eq!(engine.shutdown().summary.total_weight(), 100);
    }

    #[test]
    fn epochs_advance_and_snapshots_are_immutable() {
        let cfg = ServiceConfig::new(SummaryKind::Mg, 0.05)
            .shards(2)
            .delta_updates(100);
        let engine = Engine::start(cfg).unwrap();
        engine.ingest((0..500).collect()).unwrap();
        engine.flush().unwrap();
        let early = engine.snapshot();
        engine.ingest((0..500).collect()).unwrap();
        engine.flush().unwrap();
        let late = engine.snapshot();
        assert!(late.epoch > early.epoch);
        // The old snapshot still answers from its own epoch.
        assert_eq!(early.summary.total_weight(), 500);
        assert_eq!(late.summary.total_weight(), 1000);
        engine.shutdown();
    }

    #[test]
    fn rejects_bad_config() {
        assert!(matches!(
            Engine::start(ServiceConfig::new(SummaryKind::Mg, 0.05).shards(0)),
            Err(ServiceError::Config(_))
        ));
    }

    #[test]
    fn dead_shard_is_detected_rerouted_and_respawned() {
        // Shard 0 dies at its third batch; the engine must keep accepting
        // every batch (rerouting + respawning) and lose at most the dead
        // worker's pending delta and queued batches.
        let cfg = ServiceConfig::new(SummaryKind::Mg, 0.05)
            .shards(2)
            .delta_updates(50)
            .queue_depth(4)
            .fault_plan(plan_fn(|shard, idx| {
                if shard == 0 && idx == 2 {
                    FaultAction::Die
                } else {
                    FaultAction::Continue
                }
            }));
        let engine = Engine::start(cfg).unwrap();
        let mut accepted = 0u64;
        for _ in 0..200 {
            engine.ingest(vec![3; 10]).unwrap();
            accepted += 10;
        }
        let snap = engine.shutdown();
        let m = engine.metrics();
        assert!(m.shards_lost >= 1, "death not detected: {m:?}");
        let surviving = snap.summary.total_weight();
        assert!(surviving <= accepted);
        // The respawned shard keeps absorbing, so the loss is bounded by
        // what one incarnation could hold: its pending delta (< 50 updates
        // per hand-off threshold) plus queued batches (4 × 10) plus the
        // batch it died on.
        let max_loss = 50 + 4 * 10 + 10;
        assert!(
            accepted - surviving <= max_loss,
            "lost {} > {max_loss}",
            accepted - surviving
        );
    }

    #[test]
    fn respawn_disabled_tombstones_the_shard() {
        let cfg = ServiceConfig::new(SummaryKind::Mg, 0.05)
            .shards(2)
            .respawn_lost_shards(false)
            .fault_plan(plan_fn(|shard, idx| {
                if shard == 0 && idx == 0 {
                    FaultAction::Die
                } else {
                    FaultAction::Continue
                }
            }));
        let engine = Engine::start(cfg).unwrap();
        for _ in 0..50 {
            engine.ingest(vec![1; 4]).unwrap();
        }
        // Give the dying worker time to process its first batch, then keep
        // ingesting: every batch must land on the surviving shard.
        std::thread::sleep(std::time::Duration::from_millis(20));
        for _ in 0..50 {
            engine.ingest(vec![1; 4]).unwrap();
        }
        let m = engine.metrics();
        engine.shutdown();
        assert_eq!(m.shards_lost, 1);
        assert!(m.retries >= 1);
    }

    #[test]
    fn all_shards_dead_is_a_typed_error() {
        let cfg = ServiceConfig::new(SummaryKind::Mg, 0.05)
            .shards(1)
            .respawn_lost_shards(false)
            .fault_plan(plan_fn(|_, idx| {
                if idx == 0 {
                    FaultAction::Die
                } else {
                    FaultAction::Continue
                }
            }));
        let engine = Engine::start(cfg).unwrap();
        // First batch reaches the queue; the worker dies on it.
        engine.ingest(vec![1]).unwrap();
        // Eventually every send fails and the engine reports total loss.
        let mut saw_all_lost = false;
        for _ in 0..1_000 {
            match engine.ingest(vec![2]) {
                Ok(()) => std::thread::sleep(std::time::Duration::from_millis(1)),
                Err(ServiceError::AllShardsLost) => {
                    saw_all_lost = true;
                    break;
                }
                Err(other) => panic!("unexpected {other:?}"),
            }
        }
        assert!(saw_all_lost);
        assert_eq!(engine.metrics().shards_lost, 1);
        // Queries still answer from the last published snapshot.
        let _ = engine.snapshot();
        engine.shutdown();
    }

    #[test]
    fn metrics_reads_are_monotone_under_concurrent_ingest() {
        // Hammer `metrics()` while four threads ingest: every counter in
        // successive reports must be monotone (each counter is a relaxed
        // atomic, but loads of the same counter never go backwards), and
        // the derived report must never observe impossible states like
        // more retries than batches+retries attempts.
        let engine = Engine::start(
            ServiceConfig::new(SummaryKind::Mg, 0.05)
                .shards(2)
                .delta_updates(256),
        )
        .unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let engine = Arc::clone(&engine);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut prev = engine.metrics();
                    let mut reads = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let m = engine.metrics();
                        assert!(m.updates >= prev.updates, "updates went backwards");
                        assert!(m.batches >= prev.batches, "batches went backwards");
                        assert!(m.merges >= prev.merges, "merges went backwards");
                        assert!(m.epoch >= prev.epoch, "epoch went backwards");
                        assert!(m.shards_lost >= prev.shards_lost);
                        assert!(m.frames_rejected >= prev.frames_rejected);
                        assert!(m.retries >= prev.retries);
                        prev = m;
                        reads += 1;
                    }
                    reads
                })
            })
            .collect();
        let writers: Vec<_> = (0..4)
            .map(|_| {
                let engine = Arc::clone(&engine);
                std::thread::spawn(move || {
                    for i in 0..200u64 {
                        engine.ingest(vec![i % 16; 50]).unwrap();
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            assert!(r.join().unwrap() > 0, "reader never ran");
        }
        engine.shutdown();
        let m = engine.metrics();
        assert_eq!(m.updates, 4 * 200 * 50);
        assert_eq!(m.shards_lost, 0);
    }

    #[test]
    fn telemetry_snapshot_tracks_engine_activity() {
        let engine = Engine::start(
            ServiceConfig::new(SummaryKind::Mg, 0.05)
                .shards(2)
                .delta_updates(100),
        )
        .unwrap();
        for _ in 0..40 {
            engine.ingest(vec![2; 25]).unwrap();
        }
        engine.flush().unwrap();
        let snap = engine.telemetry_snapshot();
        let absorbed: u64 = (0..2)
            .filter_map(|s| snap.histogram(&format!("ingest_batch_micros{{shard=\"{s}\"}}")))
            .map(|h| h.count)
            .sum();
        assert_eq!(absorbed, 40, "every batch absorb must be recorded");
        let waited: u64 = (0..2)
            .filter_map(|s| snap.histogram(&format!("queue_wait_micros{{shard=\"{s}\"}}")))
            .map(|h| h.count)
            .sum();
        assert_eq!(waited, 40, "every dequeue must record its queue wait");
        // 1000 updates at delta_updates=100 hand off at least once per
        // shard that saw data; each hand-off is one compactor merge.
        let merges = snap.histogram("compact_merge_micros").unwrap();
        assert!(merges.count >= 1);
        assert_eq!(snap.gauge("epoch"), Some(engine.snapshot().epoch as i64));
        assert_eq!(snap.counter("updates_total"), Some(1000));
        // After flush + idle workers every queue is empty.
        for s in 0..2 {
            assert_eq!(
                snap.gauge(&format!("queue_depth{{shard=\"{s}\"}}")),
                Some(0)
            );
        }
        engine.shutdown();
    }

    #[test]
    fn accuracy_audit_stays_inside_the_envelope() {
        let engine = Engine::start(
            ServiceConfig::new(SummaryKind::Mg, 0.01)
                .shards(4)
                .audit(true)
                .seed(0xF417_5EED),
        )
        .unwrap();
        // Zipf-ish skew: heavy keys plus a long tail, 100k updates.
        for round in 0..100u64 {
            let mut batch = Vec::with_capacity(1000);
            for i in 0..1000u64 {
                let item = if i % 4 == 0 { i % 16 } else { round * 1000 + i };
                batch.push(item);
            }
            engine.ingest(batch).unwrap();
        }
        engine.flush().unwrap();
        let audit = engine.accuracy_audit();
        assert_eq!(audit.kind, "mg");
        assert_eq!(audit.weight, 100_000);
        assert_eq!(audit.audit_weight, 100_000, "audit saw every absorbed item");
        assert!(audit.audited_items > 0, "1-in-16 hash sample is non-empty");
        assert!((audit.envelope - 0.01 * 100_000.0).abs() < 1e-6);
        assert!(
            audit.within_bound,
            "observed {} > envelope {} + slack {}",
            audit.observed_error, audit.envelope, audit.sampling_slack
        );
        assert!(audit.observed_error <= audit.envelope);
        engine.shutdown();
    }

    #[test]
    fn accuracy_audit_quantile_uses_reservoir_with_slack() {
        let engine = Engine::start(
            ServiceConfig::new(SummaryKind::HybridQuantile, 0.02)
                .shards(2)
                .audit(true)
                .seed(0xB0B5_CAFE),
        )
        .unwrap();
        for round in 0..50u64 {
            engine
                .ingest(
                    (0..1000u64)
                        .map(|i| (round * 7 + i * 13) % 10_000)
                        .collect(),
                )
                .unwrap();
        }
        engine.flush().unwrap();
        let audit = engine.accuracy_audit();
        assert_eq!(audit.weight, 50_000);
        assert_eq!(audit.audit_weight, 50_000);
        assert_eq!(audit.reservoir_len, 4096);
        assert!(audit.sampling_slack > 0.0);
        assert!(
            audit.within_bound,
            "observed {} > envelope {} + slack {}",
            audit.observed_error, audit.envelope, audit.sampling_slack
        );
        engine.shutdown();
    }

    #[test]
    fn audit_disabled_reports_lineage_only() {
        let engine = Engine::start(ServiceConfig::new(SummaryKind::Mg, 0.05).shards(2)).unwrap();
        engine.ingest(vec![1; 500]).unwrap();
        engine.flush().unwrap();
        let audit = engine.accuracy_audit();
        assert_eq!(audit.weight, 500);
        assert_eq!(audit.audit_weight, 0);
        assert_eq!(audit.audited_items, 0);
        assert_eq!(audit.observed_error, 0.0);
        assert!(audit.within_bound);
        // Lineage rides on the snapshot too.
        let snap = engine.snapshot();
        assert_eq!(snap.lineage.weight, 500);
        assert!(snap.lineage.merges >= 1);
        assert_eq!(snap.lineage.envelope(0.05), 0.05 * 500.0);
        engine.shutdown();
    }

    #[test]
    fn all_shards_lost_dumps_seed_stamped_flight_recording() {
        let dir = std::env::temp_dir().join("ms-engine-flight-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::env::set_var("MS_FLIGHT_DIR", &dir);
        let cfg = ServiceConfig::new(SummaryKind::Mg, 0.05)
            .shards(1)
            .seed(0xDEAD_BEEF)
            .respawn_lost_shards(false)
            .fault_plan(crate::fault::plan_fn(|_, idx| {
                if idx == 0 {
                    FaultAction::Die
                } else {
                    FaultAction::Continue
                }
            }));
        let engine = Engine::start(cfg).unwrap();
        engine.ingest(vec![1]).unwrap();
        let mut lost = false;
        for _ in 0..1_000 {
            match engine.ingest(vec![2]) {
                Ok(()) => std::thread::sleep(std::time::Duration::from_millis(1)),
                Err(ServiceError::AllShardsLost) => {
                    lost = true;
                    break;
                }
                Err(other) => panic!("unexpected {other:?}"),
            }
        }
        std::env::remove_var("MS_FLIGHT_DIR");
        assert!(lost);
        let dump = dir.join("flight-all-shards-lost-0xdeadbeef.json");
        let text = std::fs::read_to_string(&dump)
            .unwrap_or_else(|e| panic!("missing flight dump {}: {e}", dump.display()));
        assert!(text.contains("\"seed\": \"0xdeadbeef\""), "{text}");
        assert!(text.contains("worker_die"), "{text}");
        assert!(text.contains("all_shards_lost"), "{text}");
        engine.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn temp_data_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("ms-engine-dur-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn durable_cfg(dir: &std::path::Path) -> ServiceConfig {
        ServiceConfig::new(SummaryKind::Mg, 0.05)
            .shards(2)
            .delta_updates(64)
            .durability(crate::config::DurabilityConfig::new(dir))
    }

    #[test]
    fn durable_shutdown_then_restart_restores_everything() {
        let dir = temp_data_dir("restart");
        let engine = Engine::start(durable_cfg(&dir)).unwrap();
        for i in 0..50u64 {
            engine.ingest(vec![i % 5; 20]).unwrap();
        }
        let before = engine.shutdown().summary.total_weight();
        assert_eq!(before, 1000);

        let engine = Engine::start(durable_cfg(&dir)).unwrap();
        let recovery = engine.recovery().expect("durable engine reports recovery");
        // Clean shutdown wrote a final checkpoint covering the whole WAL.
        assert_eq!(recovery.checkpoint_seq, 50);
        assert_eq!(recovery.replayed_records, 0);
        assert_eq!(recovery.corrupt_records, 0);
        assert_eq!(recovery.preloaded_weight, 1000);
        assert_eq!(engine.snapshot().summary.total_weight(), 1000);
        // Point estimates survive the round trip within the ε·n bound.
        let snap = engine.snapshot();
        for item in 0..5u64 {
            let est = snap.summary.point(item).unwrap();
            assert!(est <= 200 && 200 - est.min(200) <= (0.05 * 1000.0) as u64);
        }
        engine.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_abort_recovers_from_wal_replay_alone() {
        let dir = temp_data_dir("abort");
        let engine = Engine::start(durable_cfg(&dir)).unwrap();
        for _ in 0..30u64 {
            engine.ingest(vec![9; 10]).unwrap();
        }
        engine.abort();
        // No checkpoint was ever written: recovery must rebuild the full
        // stream from the WAL tail (fsync every:64 — but the process did
        // not die, so the OS page cache has every appended byte).
        let engine = Engine::start(durable_cfg(&dir)).unwrap();
        let recovery = engine.recovery().unwrap();
        assert_eq!(recovery.checkpoint_seq, 0);
        assert_eq!(recovery.replayed_records, 30);
        assert_eq!(recovery.replayed_weight, 300);
        assert_eq!(engine.snapshot().summary.total_weight(), 300);
        assert_eq!(engine.snapshot().summary.point(9), Some(300));
        engine.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_now_prunes_covered_wal_and_speeds_recovery() {
        let dir = temp_data_dir("ckptnow");
        let engine = Engine::start(durable_cfg(&dir)).unwrap();
        for _ in 0..20u64 {
            engine.ingest(vec![1; 10]).unwrap();
        }
        engine.checkpoint_now().unwrap();
        for _ in 0..7u64 {
            engine.ingest(vec![2; 10]).unwrap();
        }
        engine.abort();

        let engine = Engine::start(durable_cfg(&dir)).unwrap();
        let recovery = engine.recovery().unwrap();
        assert_eq!(recovery.checkpoint_seq, 20);
        assert_eq!(recovery.preloaded_weight, 200);
        assert_eq!(recovery.replayed_records, 7);
        assert_eq!(engine.snapshot().summary.total_weight(), 270);
        engine.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_engine_exposes_wal_and_checkpoint_telemetry() {
        let dir = temp_data_dir("telemetry");
        let engine = Engine::start(durable_cfg(&dir)).unwrap();
        for _ in 0..10u64 {
            engine.ingest(vec![4; 8]).unwrap();
        }
        engine.checkpoint_now().unwrap();
        let snap = engine.telemetry_snapshot();
        assert_eq!(snap.counter("wal_records_total"), Some(10));
        assert!(snap.counter("wal_bytes_total").unwrap() > 0);
        assert!(snap.counter("checkpoints_total").unwrap() >= 1);
        assert_eq!(snap.gauge("wal_last_seq"), Some(10));
        assert_eq!(snap.gauge("checkpoint_seq"), Some(10));
        assert!(snap.gauge("checkpoint_age_micros").is_some());
        engine.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restart_with_wrong_kind_is_a_typed_config_error() {
        let dir = temp_data_dir("kind");
        let engine = Engine::start(durable_cfg(&dir)).unwrap();
        engine.ingest(vec![1; 10]).unwrap();
        engine.shutdown();
        let wrong = ServiceConfig::new(SummaryKind::CountMin, 0.05)
            .shards(2)
            .durability(crate::config::DurabilityConfig::new(&dir));
        assert!(matches!(Engine::start(wrong), Err(ServiceError::Config(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compactor_stall_delays_but_preserves_data() {
        use std::sync::atomic::AtomicU64 as A;
        #[derive(Debug, Default)]
        struct SlowCompactor(A);
        impl crate::fault::FaultPlan for SlowCompactor {
            fn compactor_merge(&self, _merge_index: u64) -> u64 {
                self.0.fetch_add(1, Ordering::Relaxed);
                1
            }
        }
        let plan = Arc::new(SlowCompactor::default());
        let cfg = ServiceConfig::new(SummaryKind::Mg, 0.05)
            .shards(2)
            .delta_updates(100)
            .fault_plan(Arc::clone(&plan) as Arc<dyn crate::fault::FaultPlan>);
        let engine = Engine::start(cfg).unwrap();
        for _ in 0..20 {
            engine.ingest(vec![5; 100]).unwrap();
        }
        let snap = engine.shutdown();
        assert_eq!(snap.summary.total_weight(), 2000);
        assert!(plan.0.load(Ordering::Relaxed) >= 1, "stall never consulted");
    }
}

//! The engine's observability plane: pre-registered instruments for every
//! hot path, a flight recorder for failure forensics, and the snapshot
//! the [`crate::Request::Telemetry`] opcode serves.
//!
//! Instruments are created once at engine start and stored as `Arc`s in
//! fixed per-shard / per-opcode vectors, so the hot paths never touch the
//! registry lock — recording is a few relaxed atomic adds. When the
//! engine is started with `telemetry(false)` every record method is a
//! single branch and the flight recorder is disabled.
//!
//! All durations are recorded in microseconds.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use ms_core::rng::splitmix64;
use ms_obs::{
    Counter, FlightRecorder, Gauge, Histogram, MetricsRegistry, RegistrySnapshot, TraceHandle,
};

use crate::protocol::{ThreadTrace, TraceDumpReport, TraceEventRecord};
use crate::tracectx::{derive_span, TraceContext};

/// Events each per-thread flight-recorder ring retains.
const FLIGHT_RING_CAPACITY: usize = 256;

/// Opcode labels, indexed by the request opcode byte (see
/// [`crate::protocol::Request`]). Kept in wire-opcode order so the server
/// can index by opcode without a match.
pub const OPCODE_LABELS: [&str; 17] = [
    "ping",
    "ingest",
    "flush",
    "point",
    "heavy_hitters",
    "rank",
    "quantile",
    "metrics",
    "summary",
    "telemetry",
    "cluster_info",
    "node_summary",
    "range_quantile",
    "range_heavy_hitters",
    "segment_info",
    "trace_dump",
    "accuracy_report",
];

/// Pre-registered instruments for one engine (and the server wrapping it).
pub struct EngineTelemetry {
    enabled: bool,
    registry: Arc<MetricsRegistry>,
    recorder: Arc<FlightRecorder>,
    /// Absorb time per ingested batch, per shard.
    ingest_batch: Vec<Arc<Histogram>>,
    /// Time a batch sat on the shard queue before the worker picked it up.
    queue_wait: Vec<Arc<Histogram>>,
    /// Batches currently sitting on each shard queue.
    queue_depth: Vec<Arc<Gauge>>,
    /// Compactor merge duration.
    compact_merge: Arc<Histogram>,
    /// Wall-clock gap between consecutive publishes (epoch duration).
    epoch_duration: Arc<Histogram>,
    /// Depth of the compactor's (left-deep) merge tree in the snapshot.
    merge_tree_depth: Arc<Gauge>,
    /// Current published epoch.
    epoch: Arc<Gauge>,
    /// Server dispatch latency, per request opcode.
    request_latency: Vec<Arc<Histogram>>,
    /// Wire payload bytes received / sent by the server.
    bytes_in: Arc<Counter>,
    bytes_out: Arc<Counter>,
    /// Durability plane: WAL records / bytes appended, fsyncs issued,
    /// checkpoint sets written. Zero (and never touched) when the engine
    /// runs without a data directory.
    wal_records: Arc<Counter>,
    wal_bytes: Arc<Counter>,
    wal_fsyncs: Arc<Counter>,
    /// Store-mutex acquisitions by group-commit leaders; the gap between
    /// this and `wal_records` is the amortization group commit bought.
    wal_groups: Arc<Counter>,
    checkpoints: Arc<Counter>,
    /// Segments merged per range query (covering-set size).
    range_covering: Arc<Histogram>,
    /// Segment-cube health: sealed segments, open-segment age/weight.
    cube_sealed: Arc<Gauge>,
    cube_open_age: Arc<Gauge>,
    cube_open_weight: Arc<Gauge>,
    /// Pressure-driven coarsening: pairwise merges performed and the
    /// deepest tier currently resident.
    cube_coarsens: Arc<Counter>,
    cube_max_tier: Arc<Gauge>,
    /// Shared handle for rare cross-thread events (shard deaths, dumps).
    engine_events: TraceHandle,
    /// First-failure latch: only the first fatal error dumps the recorder.
    flight_dumped: AtomicBool,
    /// Seed trace ids derive from (the engine / coordinator seed).
    seed: u64,
    /// Monotonic counter feeding deterministic trace and span ids.
    span_counter: AtomicU64,
}

impl EngineTelemetry {
    /// Build the instrument set for `shards` ingest shards. When
    /// `enabled` is false every instrument still exists (snapshots stay
    /// well-formed) but nothing records. `seed` feeds deterministic trace
    /// ids ([`EngineTelemetry::root_context`]), so a replayed run mints
    /// the same trace tree.
    pub fn new(shards: usize, enabled: bool, seed: u64) -> EngineTelemetry {
        let registry = Arc::new(MetricsRegistry::new());
        let recorder = Arc::new(FlightRecorder::new(FLIGHT_RING_CAPACITY));
        recorder.set_enabled(enabled);
        let per_shard_hist = |name: &str| -> Vec<Arc<Histogram>> {
            (0..shards)
                .map(|s| registry.histogram(&format!("{name}{{shard=\"{s}\"}}")))
                .collect()
        };
        let engine_events = recorder.register("engine");
        EngineTelemetry {
            enabled,
            ingest_batch: per_shard_hist("ingest_batch_micros"),
            queue_wait: per_shard_hist("queue_wait_micros"),
            queue_depth: (0..shards)
                .map(|s| registry.gauge(&format!("queue_depth{{shard=\"{s}\"}}")))
                .collect(),
            compact_merge: registry.histogram("compact_merge_micros"),
            epoch_duration: registry.histogram("epoch_duration_micros"),
            merge_tree_depth: registry.gauge("merge_tree_depth"),
            epoch: registry.gauge("epoch"),
            request_latency: OPCODE_LABELS
                .iter()
                .map(|op| registry.histogram(&format!("request_micros{{op=\"{op}\"}}")))
                .collect(),
            bytes_in: registry.counter("server_bytes_in_total"),
            bytes_out: registry.counter("server_bytes_out_total"),
            wal_records: registry.counter("wal_records_total"),
            wal_bytes: registry.counter("wal_bytes_total"),
            wal_fsyncs: registry.counter("wal_fsyncs_total"),
            wal_groups: registry.counter("wal_group_commits_total"),
            checkpoints: registry.counter("checkpoints_total"),
            range_covering: registry.histogram("range_covering_segments"),
            cube_sealed: registry.gauge("cube_segments_sealed"),
            cube_open_age: registry.gauge("cube_open_age_micros"),
            cube_open_weight: registry.gauge("cube_open_weight"),
            cube_coarsens: registry.counter("cube_coarsen_total"),
            cube_max_tier: registry.gauge("cube_max_tier"),
            engine_events,
            registry,
            recorder,
            flight_dumped: AtomicBool::new(false),
            seed,
            span_counter: AtomicU64::new(0),
        }
    }

    /// Is recording enabled?
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The underlying registry (for callers adding their own instruments).
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// The flight recorder, for registering per-thread trace handles.
    pub fn recorder(&self) -> &Arc<FlightRecorder> {
        &self.recorder
    }

    /// The per-shard queue-depth gauges — the admission controller's
    /// pressure signal ([`crate::overload::Admission`]). When telemetry
    /// is disabled the gauges never move, so watermark shedding is inert
    /// and only the in-flight caps act.
    pub fn queue_depth_gauges(&self) -> Vec<Arc<Gauge>> {
        self.queue_depth.clone()
    }

    /// The seed trace ids derive from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Mint a fresh root [`TraceContext`] — a pure function of
    /// `(seed, requests rooted so far)`, so a replayed run yields the
    /// same trace ids in the same order. Minted even when telemetry is
    /// disabled: downstream nodes may be recording even if this process
    /// is not.
    pub fn root_context(&self) -> TraceContext {
        let n = self.span_counter.fetch_add(1, Ordering::Relaxed);
        let mut state = self
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(n.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        let id = splitmix64(&mut state);
        TraceContext {
            trace_id: if id == 0 { 1 } else { id },
            parent_span: 0,
        }
    }

    /// Derive a fresh child span id under `ctx` (deterministic, unique
    /// per process even when every node shares one seed — the parent
    /// span and the local counter both feed the mix).
    pub fn next_span(&self, ctx: TraceContext) -> u64 {
        let n = self.span_counter.fetch_add(1, Ordering::Relaxed);
        derive_span(ctx.trace_id, ctx.parent_span, self.seed ^ n)
    }

    /// Export the flight recorder as a wire-encodable
    /// [`TraceDumpReport`] for the `TraceDump` opcode.
    pub fn trace_report(&self) -> TraceDumpReport {
        TraceDumpReport {
            seed: self.seed,
            ring_capacity: self.recorder.capacity() as u64,
            captured_micros: self.recorder.captured_micros(),
            threads: self
                .recorder
                .export()
                .into_iter()
                .map(|t| ThreadTrace {
                    label: t.label,
                    evicted: t.evicted,
                    events: t
                        .events
                        .into_iter()
                        .map(|e| TraceEventRecord {
                            name: e.name.to_string(),
                            start_micros: e.start_micros,
                            duration_micros: e.duration_micros,
                            fields: e
                                .fields
                                .into_iter()
                                .map(|(k, v)| (k.to_string(), v))
                                .collect(),
                        })
                        .collect(),
                })
                .collect(),
        }
    }

    /// Record one absorbed batch on `shard`.
    pub fn record_ingest_batch(&self, shard: usize, micros: u64) {
        if self.enabled {
            self.ingest_batch[shard].record(micros);
        }
    }

    /// Record how long a batch waited on `shard`'s queue.
    pub fn record_queue_wait(&self, shard: usize, micros: u64) {
        if self.enabled {
            self.queue_wait[shard].record(micros);
        }
    }

    /// A batch was enqueued on `shard`.
    pub fn queue_pushed(&self, shard: usize) {
        if self.enabled {
            self.queue_depth[shard].inc();
        }
    }

    /// A batch was taken off `shard`'s queue.
    pub fn queue_popped(&self, shard: usize) {
        if self.enabled {
            self.queue_depth[shard].dec();
        }
    }

    /// Zero `shard`'s queue-depth gauge (a dead worker takes its queued
    /// batches with it).
    pub fn queue_reset(&self, shard: usize) {
        if self.enabled {
            self.queue_depth[shard].set(0);
        }
    }

    /// Record one compactor merge and the resulting merge-tree depth.
    pub fn record_compact_merge(&self, micros: u64, tree_depth: u64) {
        if self.enabled {
            self.compact_merge.record(micros);
            self.merge_tree_depth.set(tree_depth as i64);
        }
    }

    /// Record a publish: the new epoch and the gap since the previous one.
    pub fn record_publish(&self, epoch: u64, since_last_micros: u64) {
        if self.enabled {
            self.epoch.set(epoch as i64);
            self.epoch_duration.record(since_last_micros);
        }
    }

    /// Record one served request by wire opcode.
    pub fn record_request(&self, opcode: u8, micros: u64) {
        if self.enabled {
            if let Some(h) = self.request_latency.get(opcode as usize) {
                h.record(micros);
            }
        }
    }

    /// Count wire payload bytes received by the server.
    pub fn add_bytes_in(&self, n: u64) {
        if self.enabled {
            self.bytes_in.add(n);
        }
    }

    /// Count wire payload bytes sent by the server.
    pub fn add_bytes_out(&self, n: u64) {
        if self.enabled {
            self.bytes_out.add(n);
        }
    }

    /// Record one WAL append: payload bytes written and whether the
    /// append fsynced the segment.
    pub fn record_wal_append(&self, bytes: u64, synced: bool) {
        if self.enabled {
            self.wal_records.add(1);
            self.wal_bytes.add(bytes);
            if synced {
                self.wal_fsyncs.add(1);
            }
        }
    }

    /// Record the WAL groups a caller *led* through group commit:
    /// `records` appends across `groups` store-lock rounds with `fsyncs`
    /// syncs. Followers report all-zero stats, so summed over every
    /// caller the totals are exact — `wal_records_total` still counts
    /// each append exactly once.
    pub fn record_wal_group(&self, groups: u64, records: u64, bytes: u64, fsyncs: u64) {
        if self.enabled && groups > 0 {
            self.wal_groups.add(groups);
            self.wal_records.add(records);
            self.wal_bytes.add(bytes);
            self.wal_fsyncs.add(fsyncs);
        }
    }

    /// Record one checkpoint set written to disk.
    pub fn record_checkpoint(&self) {
        if self.enabled {
            self.checkpoints.add(1);
        }
    }

    /// Record the covering-set size of one range query (segments merged
    /// to answer it).
    pub fn record_range_covering(&self, segments: u64) {
        if self.enabled {
            self.range_covering.record(segments);
        }
    }

    /// Refresh the segment-cube health gauges (called at snapshot time,
    /// not on the ingest path).
    pub fn set_cube_health(&self, sealed: u64, open_age_micros: u64, open_weight: u64) {
        if self.enabled {
            self.cube_sealed.set(sealed as i64);
            self.cube_open_age.set(open_age_micros as i64);
            self.cube_open_weight.set(open_weight as i64);
        }
    }

    /// Record pressure-driven segment coarsening: `pairs` pairwise merges
    /// just performed, and the deepest tier now resident in the cube.
    pub fn record_coarsen(&self, pairs: u64, max_tier: u64) {
        if self.enabled && pairs > 0 {
            self.cube_coarsens.add(pairs);
        }
        if self.enabled {
            self.cube_max_tier.set(max_tier as i64);
        }
    }

    /// Record a rare cross-thread event (shard death, respawn, dump).
    pub fn event(&self, name: &'static str, fields: &[(&'static str, u64)]) {
        self.engine_events.event(name, fields);
    }

    /// Snapshot every instrument.
    pub fn snapshot(&self) -> RegistrySnapshot {
        self.registry.snapshot()
    }

    /// Dump the flight recorder as seed-stamped JSON, once per engine:
    /// the first fatal error wins and later calls return `None`. The dump
    /// lands in `$MS_FLIGHT_DIR` (default `target/flight`), named after
    /// `reason` and `seed` so the failing run is reproducible from the
    /// filename alone.
    pub fn dump_flight(&self, seed: u64, reason: &str) -> Option<PathBuf> {
        if !self.enabled || self.flight_dumped.swap(true, Ordering::AcqRel) {
            return None;
        }
        let dir = std::env::var("MS_FLIGHT_DIR").unwrap_or_else(|_| "target/flight".to_string());
        let name = format!("flight-{reason}-{seed:#x}.json");
        self.recorder.dump_to_file(&dir, &name, seed).ok()
    }
}

/// Measure a closure's wall-clock duration in microseconds.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_micros() as u64)
}

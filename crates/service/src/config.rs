//! Engine configuration: which summary family each shard maintains and how
//! the sharded pipeline is sized.

use std::path::PathBuf;
use std::sync::Arc;

use ms_core::{ServiceError, Wire, WireError, WireReader};
use ms_store::FsyncPolicy;

use crate::fault::{FaultPlan, NoFaults};
use crate::overload::OverloadConfig;

/// The summary family an engine maintains (one instance per shard plus the
/// compacted global).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SummaryKind {
    /// Misra-Gries heavy hitters (§3.1).
    Mg,
    /// SpaceSaving heavy hitters (§3.2, isomorphic to MG).
    SpaceSaving,
    /// Hybrid quantiles, no advance knowledge of `n` (§4.3).
    HybridQuantile,
    /// Count-Min linear sketch.
    CountMin,
}

impl SummaryKind {
    /// Stable label used by the CLI and the bench tables.
    pub fn label(&self) -> &'static str {
        match self {
            SummaryKind::Mg => "mg",
            SummaryKind::SpaceSaving => "space-saving",
            SummaryKind::HybridQuantile => "hybrid-quantile",
            SummaryKind::CountMin => "count-min",
        }
    }

    /// Parse a label (as accepted by the CLI).
    pub fn parse(s: &str) -> Option<SummaryKind> {
        match s {
            "mg" => Some(SummaryKind::Mg),
            "space-saving" => Some(SummaryKind::SpaceSaving),
            "hybrid-quantile" => Some(SummaryKind::HybridQuantile),
            "count-min" => Some(SummaryKind::CountMin),
            _ => None,
        }
    }

    /// All four kinds, for tests and benches.
    pub fn all() -> [SummaryKind; 4] {
        [
            SummaryKind::Mg,
            SummaryKind::SpaceSaving,
            SummaryKind::HybridQuantile,
            SummaryKind::CountMin,
        ]
    }
}

impl Wire for SummaryKind {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(match self {
            SummaryKind::Mg => 0,
            SummaryKind::SpaceSaving => 1,
            SummaryKind::HybridQuantile => 2,
            SummaryKind::CountMin => 3,
        });
    }

    fn decode_from(r: &mut WireReader<'_>) -> std::result::Result<Self, WireError> {
        match r.byte()? {
            0 => Ok(SummaryKind::Mg),
            1 => Ok(SummaryKind::SpaceSaving),
            2 => Ok(SummaryKind::HybridQuantile),
            3 => Ok(SummaryKind::CountMin),
            _ => Err(WireError::Malformed("unknown summary kind")),
        }
    }
}

/// Crash-safe durability settings: where the WAL and checkpoints live and
/// how eagerly they reach stable storage. `None` keeps the engine purely
/// in-memory (the pre-durability behavior).
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Data directory holding `wal/` and `ckpt/`.
    pub data_dir: PathBuf,
    /// When WAL appends fsync (`always` / `every:N` / `never`).
    pub fsync: FsyncPolicy,
    /// Write a checkpoint set after this many ingested batches.
    pub checkpoint_batches: u64,
    /// Rotate WAL segments past this size, so checkpoints can delete
    /// whole covered files.
    pub segment_bytes: u64,
    /// Checkpoint sets retained on disk (older ones are pruned together
    /// with the WAL segments they cover).
    pub keep_checkpoints: usize,
}

impl DurabilityConfig {
    /// Defaults for `data_dir`: `every:64` fsyncs, a checkpoint every 512
    /// batches, 4 MiB segments, 2 retained sets.
    pub fn new(data_dir: impl Into<PathBuf>) -> DurabilityConfig {
        DurabilityConfig {
            data_dir: data_dir.into(),
            fsync: FsyncPolicy::EveryN(64),
            checkpoint_batches: 512,
            segment_bytes: 4 << 20,
            keep_checkpoints: 2,
        }
    }

    /// Set the fsync policy.
    pub fn fsync(mut self, policy: FsyncPolicy) -> DurabilityConfig {
        self.fsync = policy;
        self
    }

    /// Set the checkpoint cadence in ingested batches.
    pub fn checkpoint_batches(mut self, batches: u64) -> DurabilityConfig {
        self.checkpoint_batches = batches;
        self
    }

    /// Set the WAL segment rotation threshold.
    pub fn segment_bytes(mut self, bytes: u64) -> DurabilityConfig {
        self.segment_bytes = bytes;
        self
    }

    /// The [`ms_store::StoreConfig`] these settings describe.
    pub fn store_config(&self) -> ms_store::StoreConfig {
        ms_store::StoreConfig::new(&self.data_dir)
            .segment_bytes(self.segment_bytes)
            .fsync(self.fsync)
    }
}

/// The segment cube's time source. Injectable so tests drive wall-clock
/// sealing deterministically (a [`ManualClock`] advanced by the test)
/// instead of sleeping — new tests must never synchronize on `sleep`.
pub trait CubeClock: Send + Sync + std::fmt::Debug {
    /// Monotone-ish microseconds; the cube clamps regressions itself.
    fn now_micros(&self) -> u64;
}

/// Production clock: microseconds since the clock was created.
#[derive(Debug)]
pub struct SystemClock {
    base: std::time::Instant,
}

impl SystemClock {
    /// A clock starting at 0 now.
    #[allow(clippy::new_without_default)]
    pub fn new() -> SystemClock {
        SystemClock {
            base: std::time::Instant::now(),
        }
    }
}

impl CubeClock for SystemClock {
    fn now_micros(&self) -> u64 {
        self.base.elapsed().as_micros() as u64
    }
}

/// Test clock: reads an atomic the test sets or advances explicitly.
#[derive(Debug, Default)]
pub struct ManualClock(std::sync::atomic::AtomicU64);

impl ManualClock {
    /// A clock frozen at `micros`.
    pub fn new(micros: u64) -> ManualClock {
        ManualClock(std::sync::atomic::AtomicU64::new(micros))
    }

    /// Jump to an absolute time.
    pub fn set(&self, micros: u64) {
        self.0.store(micros, std::sync::atomic::Ordering::Release);
    }

    /// Advance by `micros` and return the new time.
    pub fn advance(&self, micros: u64) -> u64 {
        self.0
            .fetch_add(micros, std::sync::atomic::Ordering::AcqRel)
            + micros
    }
}

impl CubeClock for ManualClock {
    fn now_micros(&self) -> u64 {
        self.0.load(std::sync::atomic::Ordering::Acquire)
    }
}

/// Segmented-ingest (segment cube) settings: when the open segment seals
/// and how much history stays queryable. `None` on [`ServiceConfig`]
/// keeps the engine cube-free (the pre-range-query behavior).
#[derive(Debug, Clone)]
pub struct SegmentConfig {
    /// Seal the open segment once it holds this many batches.
    pub seal_batches: u64,
    /// Also seal once the open segment spans this much wall-clock time
    /// (checked on the next ingest; an idle engine seals lazily).
    pub seal_micros: u64,
    /// Sealed segments kept queryable (and on disk); the oldest are
    /// evicted past this.
    pub max_sealed: usize,
    /// Pressure-driven coarsening: once more than this many sealed
    /// segments are resident, the cube merges the two oldest adjacent
    /// segments pairwise into a coarser tier until back under the
    /// watermark (DESIGN.md §Overload model). Memory per segment is
    /// bounded by the O(1/ε) summary sizes, so a segment-count watermark
    /// is a resident-memory watermark. `0` disables coarsening (the cube
    /// falls back to evicting past `max_sealed`, losing old history
    /// instead of coarsening it).
    pub coarsen_watermark: usize,
    /// Time source for segment boundaries and range selection.
    pub clock: Arc<dyn CubeClock>,
}

impl SegmentConfig {
    /// Defaults: seal every 64 batches or 60 s, keep 1024 segments, on
    /// the system clock.
    #[allow(clippy::new_without_default)]
    pub fn new() -> SegmentConfig {
        SegmentConfig {
            seal_batches: 64,
            seal_micros: 60_000_000,
            max_sealed: 1024,
            coarsen_watermark: 0,
            clock: Arc::new(SystemClock::new()),
        }
    }

    /// Set the batch-count seal boundary.
    pub fn seal_batches(mut self, batches: u64) -> SegmentConfig {
        self.seal_batches = batches;
        self
    }

    /// Set the wall-clock seal boundary in microseconds.
    pub fn seal_micros(mut self, micros: u64) -> SegmentConfig {
        self.seal_micros = micros;
        self
    }

    /// Set the sealed-segment retention cap.
    pub fn max_sealed(mut self, segments: usize) -> SegmentConfig {
        self.max_sealed = segments;
        self
    }

    /// Set the coarsening watermark (`0` disables coarsening).
    pub fn coarsen_watermark(mut self, segments: usize) -> SegmentConfig {
        self.coarsen_watermark = segments;
        self
    }

    /// Install a time source (tests inject a [`ManualClock`]).
    pub fn clock(mut self, clock: Arc<dyn CubeClock>) -> SegmentConfig {
        self.clock = clock;
        self
    }
}

/// Sizing and summary parameters for an [`crate::Engine`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Ingest worker threads, each owning a thread-local delta summary.
    pub shards: usize,
    /// Bounded depth of each worker's batch queue; a full queue blocks
    /// [`crate::Engine::ingest`] (backpressure) and fails
    /// [`crate::Engine::try_ingest`] (drop accounting).
    pub queue_depth: usize,
    /// Updates a worker absorbs into its delta before handing it to the
    /// compactor and starting a fresh one.
    pub delta_updates: usize,
    /// Slots in the engine's recycling buffer pool. Workers return each
    /// absorbed batch's `Vec<u64>` here and [`crate::Engine::ingest_buffer`]
    /// hands them back out, so a steady-state ingest loop allocates
    /// nothing. `0` disables recycling (every batch allocates fresh).
    pub pool_buffers: usize,
    /// Which summary family to maintain.
    pub kind: SummaryKind,
    /// Error parameter ε shared by every shard (merging requires it).
    pub epsilon: f64,
    /// Base RNG / hash seed. Linear sketches must share it across shards;
    /// randomized quantile summaries fork it per shard.
    pub seed: u64,
    /// Respawn a worker whose thread died (fault injection or a panic in a
    /// summary). The respawned worker starts with a fresh, empty delta; the
    /// dead worker's un-handed-off delta is lost, which mergeability makes
    /// safe — see DESIGN.md §Failure model.
    pub respawn_lost_shards: bool,
    /// Fault-injection schedule consulted by workers and the compactor.
    /// [`NoFaults`] in production.
    pub fault_plan: Arc<dyn FaultPlan>,
    /// Record latency histograms, gauges and flight-recorder traces
    /// (see [`crate::EngineTelemetry`]). On by default; turn off to
    /// measure the instrumentation's own overhead (`serve
    /// --no-telemetry`, `MS_BENCH_TELEMETRY=0`).
    pub telemetry: bool,
    /// Accuracy self-audit: keep a seeded reservoir of raw items plus
    /// exact counts of a hash-chosen 1/16 of the item space, so
    /// [`crate::Request::AccuracyReport`] can compare the summary's
    /// answers against ground truth live. Off by default — the audit
    /// adds per-batch work on the ingest path (`serve --audit`).
    pub audit: bool,
    /// Crash-safe durability (WAL + checkpoints under a data directory).
    /// `None` (the default) keeps the engine purely in-memory.
    pub durability: Option<DurabilityConfig>,
    /// Segmented ingest (the segment cube) for time-windowed range
    /// queries. `None` (the default) answers only "everything so far".
    pub segments: Option<SegmentConfig>,
    /// Admission control and load shedding (in-flight caps + queue
    /// pressure watermarks). Fully permissive by default.
    pub overload: OverloadConfig,
    /// Pin each shard worker (and, with a spare core, the compactor) to
    /// its own CPU via `sched_setaffinity` (`serve --pin-cores`). Off by
    /// default; a no-op with a logged reason on non-Linux hosts or when
    /// `host_cpus < shards` — see [`crate::AffinityPlan`].
    pub pin_cores: bool,
}

impl ServiceConfig {
    /// A config with sensible defaults for `kind` at `epsilon`.
    pub fn new(kind: SummaryKind, epsilon: f64) -> Self {
        ServiceConfig {
            shards: 4,
            queue_depth: 64,
            delta_updates: 16_384,
            pool_buffers: 512,
            kind,
            epsilon,
            seed: 0x5E1F,
            respawn_lost_shards: true,
            fault_plan: Arc::new(NoFaults),
            telemetry: true,
            audit: false,
            durability: None,
            segments: None,
            overload: OverloadConfig::default(),
            pin_cores: false,
        }
    }

    /// Set the shard count.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Set the per-worker queue depth.
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth;
        self
    }

    /// Set the per-worker delta hand-off threshold.
    pub fn delta_updates(mut self, updates: usize) -> Self {
        self.delta_updates = updates;
        self
    }

    /// Set the recycling buffer-pool size (`0` disables recycling).
    pub fn pool_buffers(mut self, buffers: usize) -> Self {
        self.pool_buffers = buffers;
        self
    }

    /// Set the base seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enable or disable respawning of dead worker shards.
    pub fn respawn_lost_shards(mut self, respawn: bool) -> Self {
        self.respawn_lost_shards = respawn;
        self
    }

    /// Install a fault-injection schedule.
    pub fn fault_plan(mut self, plan: Arc<dyn FaultPlan>) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Enable or disable telemetry recording.
    pub fn telemetry(mut self, enabled: bool) -> Self {
        self.telemetry = enabled;
        self
    }

    /// Enable or disable the accuracy self-audit plane.
    pub fn audit(mut self, enabled: bool) -> Self {
        self.audit = enabled;
        self
    }

    /// Enable or disable core pinning for workers and the compactor.
    pub fn pin_cores(mut self, enabled: bool) -> Self {
        self.pin_cores = enabled;
        self
    }

    /// Enable crash-safe durability under `durability.data_dir`.
    pub fn durability(mut self, durability: DurabilityConfig) -> Self {
        self.durability = Some(durability);
        self
    }

    /// Enable the segment cube (time-windowed range queries).
    pub fn segments(mut self, segments: SegmentConfig) -> Self {
        self.segments = Some(segments);
        self
    }

    /// Install admission-control / load-shedding settings.
    pub fn overload(mut self, overload: OverloadConfig) -> Self {
        self.overload = overload;
        self
    }

    /// Validate the sizing parameters.
    pub fn check(&self) -> std::result::Result<(), ServiceError> {
        if self.shards == 0 {
            return Err(ServiceError::Config("shards must be at least 1"));
        }
        if self.queue_depth == 0 {
            return Err(ServiceError::Config("queue_depth must be at least 1"));
        }
        if self.delta_updates == 0 {
            return Err(ServiceError::Config("delta_updates must be at least 1"));
        }
        if !(self.epsilon > 0.0 && self.epsilon < 1.0) {
            return Err(ServiceError::Config("epsilon must be in (0, 1)"));
        }
        if let Some(d) = &self.durability {
            if d.checkpoint_batches == 0 {
                return Err(ServiceError::Config(
                    "checkpoint_batches must be at least 1",
                ));
            }
            if d.segment_bytes < 1024 {
                return Err(ServiceError::Config("segment_bytes must be at least 1024"));
            }
            if d.keep_checkpoints == 0 {
                return Err(ServiceError::Config("keep_checkpoints must be at least 1"));
            }
        }
        if let Some(s) = &self.segments {
            if s.seal_batches == 0 {
                return Err(ServiceError::Config("seal_batches must be at least 1"));
            }
            if s.seal_micros == 0 {
                return Err(ServiceError::Config("seal_micros must be at least 1"));
            }
            if s.max_sealed == 0 {
                return Err(ServiceError::Config("max_sealed must be at least 1"));
            }
        }
        if self.overload.shed_watermark < 0.0 || self.overload.shed_watermark > 1.0 {
            return Err(ServiceError::Config("shed_watermark must be in [0, 1]"));
        }
        if self.overload.ingest_watermark < 0.0 || self.overload.ingest_watermark > 1.0 {
            return Err(ServiceError::Config("ingest_watermark must be in [0, 1]"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_labels_roundtrip() {
        for kind in SummaryKind::all() {
            assert_eq!(SummaryKind::parse(kind.label()), Some(kind));
        }
        assert_eq!(SummaryKind::parse("bogus"), None);
    }

    #[test]
    fn kind_wire_roundtrip() {
        for kind in SummaryKind::all() {
            assert_eq!(SummaryKind::decode(&kind.encode()).unwrap(), kind);
        }
        assert!(SummaryKind::decode(&[9]).is_err());
    }

    #[test]
    fn config_checks_sizing() {
        let good = ServiceConfig::new(SummaryKind::Mg, 0.01);
        assert!(good.check().is_ok());
        assert!(matches!(
            good.clone().shards(0).check(),
            Err(ServiceError::Config(_))
        ));
        assert!(good.clone().queue_depth(0).check().is_err());
        assert!(good.clone().delta_updates(0).check().is_err());
        let mut bad_eps = good.clone();
        bad_eps.epsilon = 1.5;
        assert!(bad_eps.check().is_err());
    }

    #[test]
    fn config_checks_segment_sizing() {
        let good = ServiceConfig::new(SummaryKind::Mg, 0.01).segments(SegmentConfig::new());
        assert!(good.check().is_ok());
        let zero_batches = ServiceConfig::new(SummaryKind::Mg, 0.01)
            .segments(SegmentConfig::new().seal_batches(0));
        assert!(zero_batches.check().is_err());
        let zero_micros =
            ServiceConfig::new(SummaryKind::Mg, 0.01).segments(SegmentConfig::new().seal_micros(0));
        assert!(zero_micros.check().is_err());
        let zero_sealed =
            ServiceConfig::new(SummaryKind::Mg, 0.01).segments(SegmentConfig::new().max_sealed(0));
        assert!(zero_sealed.check().is_err());
    }

    #[test]
    fn manual_clock_sets_and_advances() {
        let clock = ManualClock::new(10);
        assert_eq!(clock.now_micros(), 10);
        assert_eq!(clock.advance(5), 15);
        assert_eq!(clock.now_micros(), 15);
        clock.set(3);
        assert_eq!(clock.now_micros(), 3);
    }

    #[test]
    fn fault_plan_defaults_to_no_faults() {
        let cfg = ServiceConfig::new(SummaryKind::Mg, 0.01);
        assert!(cfg.respawn_lost_shards);
        assert_eq!(
            cfg.fault_plan.worker_batch(0, 0),
            crate::fault::FaultAction::Continue
        );
        let off = cfg.respawn_lost_shards(false);
        assert!(!off.respawn_lost_shards);
    }
}

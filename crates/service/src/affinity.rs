//! Core-affinity runtime for shard workers and the compactor.
//!
//! The scaling table in `BENCH_service.json` showed shard count failing to
//! translate into throughput: workers migrate between cores, dragging
//! their delta summaries and pool buffers across caches. Pinning each
//! worker to its own core (and the compactor to the next one) keeps the
//! per-shard working set hot.
//!
//! The binding is a raw `extern "C"` declaration of Linux's
//! `sched_setaffinity(2)` — the workspace stays dependency-free, no
//! `libc` crate. The plan degrades to a logged no-op instead of failing:
//!
//! - on non-Linux targets (no portable affinity syscall),
//! - when `host_cpus < shards` (pinning would stack several workers on
//!   one core and *serialize* them — worse than letting the scheduler
//!   balance),
//! - when the operator did not pass `--pin-cores` (the default).
//!
//! The reason for skipping is recorded in [`AffinityStatus`] so the
//! telemetry snapshot and the bench harness can report exactly why
//! pinning did or did not happen.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Bits in the fixed-size CPU mask handed to the kernel: 1024 CPUs, the
/// same size glibc's `cpu_set_t` defaults to.
#[allow(dead_code)] // only the Linux syscall shim consumes it
const CPU_SET_WORDS: usize = 1024 / 64;

#[cfg(target_os = "linux")]
mod sys {
    use super::CPU_SET_WORDS;

    extern "C" {
        // int sched_setaffinity(pid_t pid, size_t cpusetsize, const cpu_set_t *mask);
        // pid 0 targets the calling thread.
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
    }

    /// Pin the calling thread to `cpu`. Returns false if the kernel
    /// rejected the mask (e.g. the CPU is offline or outside the cgroup).
    pub fn pin_current_thread(cpu: usize) -> bool {
        if cpu >= CPU_SET_WORDS * 64 {
            return false;
        }
        let mut mask = [0u64; CPU_SET_WORDS];
        mask[cpu / 64] = 1 << (cpu % 64);
        // Safety: the mask is a valid, initialized buffer of the size we
        // report, and pid 0 is the calling thread.
        unsafe { sched_setaffinity(0, CPU_SET_WORDS * 8, mask.as_ptr()) == 0 }
    }
}

#[cfg(not(target_os = "linux"))]
mod sys {
    /// Non-Linux targets have no `sched_setaffinity`; the plan has
    /// already recorded the skip reason, this is just the terminal no-op.
    pub fn pin_current_thread(_cpu: usize) -> bool {
        false
    }
}

/// Snapshot of what the affinity runtime did, for telemetry and benches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AffinityStatus {
    /// Whether the operator asked for pinning (`--pin-cores`).
    pub requested: bool,
    /// Whether the plan decided pinning applies on this host.
    pub enabled: bool,
    /// Threads successfully pinned so far.
    pub pinned: usize,
    /// Why pinning is a no-op, when it is.
    pub skip_reason: Option<String>,
}

impl AffinityStatus {
    /// One-line human-readable form for logs and bench output.
    pub fn describe(&self) -> String {
        if self.enabled {
            format!("affinity on ({} threads pinned)", self.pinned)
        } else {
            format!(
                "affinity off ({})",
                self.skip_reason.as_deref().unwrap_or("not requested")
            )
        }
    }
}

/// Decides which core each engine thread gets and applies the pin.
#[derive(Debug)]
pub struct AffinityPlan {
    requested: bool,
    shards: usize,
    host_cpus: usize,
    skip_reason: Option<String>,
    pinned: AtomicUsize,
}

impl AffinityPlan {
    /// Build a plan for `shards` workers on a host with `host_cpus`
    /// logical CPUs. The no-op rules live here so they are decided once,
    /// up front, with a recorded reason.
    pub fn new(requested: bool, shards: usize, host_cpus: usize) -> AffinityPlan {
        let skip_reason = if !requested {
            Some("pin_cores disabled".to_string())
        } else if !cfg!(target_os = "linux") {
            Some("non-Linux target: no sched_setaffinity".to_string())
        } else if host_cpus < shards {
            Some(format!(
                "host_cpus {host_cpus} < shards {shards}: pinning would stack workers"
            ))
        } else {
            None
        };
        AffinityPlan {
            requested,
            shards,
            host_cpus,
            skip_reason,
            pinned: AtomicUsize::new(0),
        }
    }

    /// True when the plan will actually pin threads.
    pub fn enabled(&self) -> bool {
        self.skip_reason.is_none()
    }

    /// Core for worker `shard`: one core per shard, in order.
    fn worker_cpu(&self, shard: usize) -> Option<usize> {
        if self.enabled() {
            Some(shard)
        } else {
            None
        }
    }

    /// Core for the compactor: the first core after the workers when the
    /// host has one spare, otherwise unpinned so it can float between the
    /// workers' cores instead of serializing behind shard 0.
    fn compactor_cpu(&self) -> Option<usize> {
        if self.enabled() && self.host_cpus > self.shards {
            Some(self.shards)
        } else {
            None
        }
    }

    /// Pin the calling worker thread for `shard`. Returns the core it was
    /// pinned to, or `None` if the plan (or the kernel) declined.
    pub fn pin_worker(&self, shard: usize) -> Option<usize> {
        self.pin_to(self.worker_cpu(shard)?)
    }

    /// Pin the calling compactor thread per the plan.
    pub fn pin_compactor(&self) -> Option<usize> {
        self.pin_to(self.compactor_cpu()?)
    }

    fn pin_to(&self, cpu: usize) -> Option<usize> {
        if sys::pin_current_thread(cpu) {
            self.pinned.fetch_add(1, Ordering::Relaxed);
            Some(cpu)
        } else {
            None
        }
    }

    /// Current status snapshot.
    pub fn status(&self) -> AffinityStatus {
        AffinityStatus {
            requested: self.requested,
            enabled: self.enabled(),
            pinned: self.pinned.load(Ordering::Relaxed),
            skip_reason: self.skip_reason.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plan_is_a_recorded_noop() {
        let plan = AffinityPlan::new(false, 4, 64);
        assert!(!plan.enabled());
        assert_eq!(plan.pin_worker(0), None);
        assert_eq!(plan.pin_compactor(), None);
        let status = plan.status();
        assert!(!status.requested);
        assert_eq!(status.pinned, 0);
        assert_eq!(status.skip_reason.as_deref(), Some("pin_cores disabled"));
        assert!(status.describe().contains("affinity off"));
    }

    #[test]
    fn undersized_host_skips_with_logged_reason() {
        let plan = AffinityPlan::new(true, 8, 2);
        assert!(!plan.enabled());
        assert_eq!(plan.pin_worker(3), None);
        let reason = plan.status().skip_reason.unwrap();
        assert!(reason.contains("host_cpus 2 < shards 8"), "{reason}");
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn pinning_to_cpu0_succeeds_on_linux() {
        // Every Linux host has CPU 0 online; host_cpus == shards leaves
        // the compactor unpinned by design.
        let plan = AffinityPlan::new(true, 1, 1);
        assert!(plan.enabled());
        assert_eq!(plan.pin_worker(0), Some(0));
        assert_eq!(plan.pin_compactor(), None);
        assert_eq!(plan.status().pinned, 1);
        assert!(plan.status().describe().contains("affinity on"));
    }

    #[test]
    fn spare_core_hosts_pin_the_compactor_after_the_workers() {
        let plan = AffinityPlan::new(true, 2, 8);
        assert!(plan.enabled());
        assert_eq!(plan.worker_cpu(0), Some(0));
        assert_eq!(plan.worker_cpu(1), Some(1));
        assert_eq!(plan.compactor_cpu(), Some(2));
    }

    #[test]
    fn out_of_range_cpu_is_rejected_not_undefined() {
        assert!(!sys::pin_current_thread(CPU_SET_WORDS * 64 + 1));
    }
}

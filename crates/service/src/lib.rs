//! Sharded concurrent streaming-aggregation service.
//!
//! This crate turns the paper's mergeability guarantee into a concurrent
//! systems design. An [`Engine`] runs `N` ingest workers, each owning a
//! thread-local **delta** summary of one of four families
//! ([`SummaryKind`]); a background **compactor** merges handed-off deltas
//! into a global summary and publishes immutable [`Snapshot`]s behind an
//! `Arc`, so queries never block ingest. Because summaries are mergeable
//! under *arbitrary* merge trees (PODS'12, Definition 1), the
//! nondeterministic interleaving of shard hand-offs does not degrade the
//! `εn` error bound — the differential tests in `tests/` check the
//! concurrent engine against a single-threaded reference on the same
//! stream.
//!
//! The [`server`] module adds a TCP front-end: [`Wire`]-encoded
//! [`Request`]/[`Response`] values carried in `WireFrame`s
//! (`ms_core::wire`), served by `mergeable serve` and exercised by
//! `mergeable bench-client`.
//!
//! The same mergeability argument covers *failure*: a crashed shard's
//! published deltas are already merged, so the engine degrades to a valid
//! summary of the surviving updates instead of dying. The [`fault`] module
//! defines the injection seams ([`FaultPlan`]) the `ms-faultsim` harness
//! drives to prove that under seeded schedules of shard death, queue
//! saturation, frame corruption and client disconnects; every failure path
//! returns a typed [`ServiceError`].
//!
//! [`Wire`]: ms_core::Wire

pub mod affinity;
pub mod config;
pub mod cube;
pub mod deadline;
pub mod engine;
pub mod fault;
pub mod overload;
pub mod protocol;
pub mod server;
pub mod summary;
pub mod telemetry;
pub mod tracectx;

pub use affinity::{AffinityPlan, AffinityStatus};
pub use config::{
    CubeClock, DurabilityConfig, ManualClock, SegmentConfig, ServiceConfig, SummaryKind,
    SystemClock,
};
pub use cube::{AdoptOutcome, CubeOutcome, SegmentCube};
pub use engine::{Engine, MetricsReport, RecoveryReport, Snapshot};
pub use fault::{plan_fn, FaultAction, FaultPlan, NoFaults};
pub use overload::{Admission, AdmitGuard, OpClass, OverloadConfig, ShedReason};
pub use protocol::{
    deadline_frame, decode_request, decode_traced_request, traced_frame, AccuracyAudit,
    ClusterInfo, NodeInfo, NodeState, RangeAnswer, RangeMeta, Request, RequestEnvelope, Response,
    SegmentMeta, SegmentReport, ThreadTrace, TraceDumpReport, TraceEventRecord, REQUEST_TAG,
    RESPONSE_TAG, TRACED_REQUEST_TAG,
};
pub use server::{check_phi, dispatch, Client, ClientOptions, Server, Service};
pub use summary::{MergeLineage, ShardSummary};
pub use telemetry::{EngineTelemetry, OPCODE_LABELS};
pub use tracectx::{stitch, StitchedSpan, TraceContext};

pub use ms_core::ServiceError;
pub use ms_obs::RegistrySnapshot;
pub use ms_store::FsyncPolicy;

//! The segment cube: time-segmented ingest answering range queries.
//!
//! The paper's mergeability guarantee (Definition 1) says a summary of a
//! union can be built from summaries of the parts at the same eps·n
//! bound. The cube exploits that in the time dimension: ingest is
//! partitioned into *segments* (sealed on a batch-count or wall-clock
//! boundary), each sealed segment carries one precomputed summary per
//! family, and an arbitrary time window is answered by one-shot merging
//! the covering segments — error stays eps·(window weight), not
//! eps·(total stream).
//!
//! Concurrency contract: when the cube is on, the engine routes every
//! ingest through [`SegmentCube::record_with`], which runs the WAL
//! append *inside* the cube's state lock. That serialization is what
//! lets the cube assign its own dense seq counter and have it equal the
//! WAL seq without the WAL reporting seqs back — recovery then aligns
//! sealed segments against WAL records by seq alone.
//!
//! Crash safety: sealed segments are persisted by the engine via
//! [`ms_store::SegmentStore`]; the WAL is never pruned past the last
//! *persisted* segment ([`SegmentCube::persisted_floor`]), so any
//! segment lost between seal and fsync is rebuilt by replaying the WAL
//! tail through [`SegmentCube::record_at`].

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

use ms_core::{Wire, WireError};
use ms_store::SegmentRecord;

use crate::config::{SegmentConfig, ServiceConfig, SummaryKind};
use crate::protocol::{RangeMeta, SegmentMeta, SegmentReport};
use crate::summary::ShardSummary;

/// Lock that survives a poisoned mutex (a panicking summary must not
/// wedge every later query).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Index of `kind`'s summary in a segment's family array
/// (`SummaryKind::all()` order, also the on-disk order).
fn family_index(kind: SummaryKind) -> usize {
    match kind {
        SummaryKind::Mg => 0,
        SummaryKind::SpaceSaving => 1,
        SummaryKind::HybridQuantile => 2,
        SummaryKind::CountMin => 3,
    }
}

/// What recording one batch did to the cube.
#[derive(Debug, Default)]
pub struct CubeOutcome {
    /// Seq assigned to the batch (equals the WAL seq; see module doc).
    pub seq: u64,
    /// Segments sealed or re-coarsened by this batch. The caller
    /// persists these (a coarsened segment re-persists under its
    /// surviving id, atomically replacing the finer record).
    pub sealed: Vec<SegmentRecord>,
    /// Segment ids whose files can go: evicted past `max_sealed`, or
    /// absorbed into a coarser neighbor.
    pub evicted: Vec<u64>,
    /// Pairwise coarsening merges performed while sealing (pressure
    /// crossed `coarsen_watermark`).
    pub coarsened: u64,
}

/// What adopting recovered segment records did.
#[derive(Debug, Default)]
pub struct AdoptOutcome {
    /// Records reconstructed into queryable sealed segments.
    pub adopted: usize,
    /// Records dropped (undecodable summary — version skew; everything
    /// after the first bad one goes too, preserving contiguity).
    pub dropped: usize,
    /// Segment ids evicted past `max_sealed` during adoption.
    pub evicted: Vec<u64>,
    /// Human-readable notes about drops.
    pub notes: Vec<String>,
}

/// Point-in-time cube health gauges, rendered into the Prometheus
/// exposition by [`crate::Engine::telemetry_snapshot`]: how much sealed
/// precomputation exists, and how stale/heavy the open segment is. A
/// fast-growing `open_age_micros` under a wall-clock seal policy means
/// sealing has stalled; `open_weight` bounds how much of a range answer
/// comes from the unsealed (still-moving) segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CubeHealth {
    /// Sealed segments currently queryable.
    pub sealed: u64,
    /// Age of the open segment (micros since it opened; 0 when none).
    pub open_age_micros: u64,
    /// Item weight accumulated in the open segment (0 when none).
    pub open_weight: u64,
    /// Deepest coarsening tier among resident sealed segments (0 when
    /// pressure never forced a merge).
    pub max_tier: u64,
}

/// One segment: its coordinates plus a live summary per family.
struct Segment {
    id: u64,
    start_seq: u64,
    end_seq: u64,
    start_micros: u64,
    end_micros: u64,
    weight: u64,
    batches: u64,
    /// Coarsening tier: 0 as sealed, `max(a,b)+1` after a pressure merge.
    tier: u64,
    fams: [ShardSummary; 4],
}

impl Segment {
    fn meta(&self, sealed: bool) -> SegmentMeta {
        SegmentMeta {
            id: self.id,
            start_seq: self.start_seq,
            end_seq: self.end_seq,
            start_micros: self.start_micros,
            end_micros: self.end_micros,
            weight: self.weight,
            batches: self.batches,
            sealed,
            tier: self.tier,
        }
    }

    fn to_record(&self) -> SegmentRecord {
        SegmentRecord {
            id: self.id,
            start_seq: self.start_seq,
            end_seq: self.end_seq,
            start_micros: self.start_micros,
            end_micros: self.end_micros,
            weight: self.weight,
            batches: self.batches,
            tier: self.tier,
            summaries: self.fams.iter().map(|f| f.encode()).collect(),
        }
    }

    /// Absorb the adjacent *later* segment `next` into this one: spans
    /// and weights union, families one-shot merge (Definition 1 — the
    /// merged summary covers the union at the same eps·n bound), tier
    /// deepens.
    fn absorb(&mut self, next: Segment) {
        debug_assert_eq!(next.start_seq, self.end_seq + 1, "coarsen only adjacent");
        self.end_seq = next.end_seq;
        self.end_micros = next.end_micros;
        self.weight += next.weight;
        self.batches += next.batches;
        self.tier = self.tier.max(next.tier) + 1;
        for (mine, theirs) in self.fams.iter_mut().zip(next.fams) {
            mine.merge_in_place(theirs)
                .expect("same-family segment summaries always merge");
        }
    }

    fn from_record(rec: &SegmentRecord) -> Result<Segment, WireError> {
        if rec.summaries.len() != SummaryKind::all().len() {
            return Err(WireError::Malformed("segment record family count"));
        }
        let mut fams = Vec::with_capacity(rec.summaries.len());
        for (bytes, kind) in rec.summaries.iter().zip(SummaryKind::all()) {
            let fam = ShardSummary::decode(bytes)?;
            if fam.kind() != kind {
                return Err(WireError::Malformed("segment family out of order"));
            }
            fams.push(fam);
        }
        let fams: [ShardSummary; 4] = fams
            .try_into()
            .map_err(|_| WireError::Malformed("segment record family count"))?;
        Ok(Segment {
            id: rec.id,
            start_seq: rec.start_seq,
            end_seq: rec.end_seq,
            start_micros: rec.start_micros,
            end_micros: rec.end_micros,
            weight: rec.weight,
            batches: rec.batches,
            tier: rec.tier,
            fams,
        })
    }
}

struct CubeState {
    /// Highest batch seq recorded (== WAL last seq while running).
    last_seq: u64,
    /// Monotone clamp over the injected clock: segment times never
    /// regress even if the clock does.
    last_micros: u64,
    /// Id the next opened segment gets.
    next_id: u64,
    open: Option<Segment>,
    sealed: VecDeque<Segment>,
}

/// The engine's segment cube. All methods are `&self`; internal state
/// is one mutex plus the persisted-floor atomic.
pub struct SegmentCube {
    epsilon: f64,
    seed: u64,
    cfg: SegmentConfig,
    state: Mutex<CubeState>,
    /// End seq of the newest segment known durable on disk; the WAL
    /// must never be pruned past it (0 = no segment persisted, keep
    /// everything).
    persisted_floor: AtomicU64,
}

impl SegmentCube {
    /// An empty cube. `epsilon`/`seed` size the per-segment families —
    /// they must match the engine's so per-segment linear sketches stay
    /// mergeable across nodes.
    pub fn new(epsilon: f64, seed: u64, cfg: SegmentConfig) -> SegmentCube {
        SegmentCube {
            epsilon,
            seed,
            cfg,
            state: Mutex::new(CubeState {
                last_seq: 0,
                last_micros: 0,
                next_id: 0,
                open: None,
                sealed: VecDeque::new(),
            }),
            persisted_floor: AtomicU64::new(0),
        }
    }

    fn fresh_fams(&self) -> [ShardSummary; 4] {
        SummaryKind::all().map(|kind| {
            ShardSummary::new(&ServiceConfig::new(kind, self.epsilon).seed(self.seed), 0)
        })
    }

    /// Read the clock, clamped monotone against everything recorded.
    fn now(&self, s: &mut CubeState) -> u64 {
        let now = self.cfg.clock.now_micros().max(s.last_micros);
        s.last_micros = now;
        now
    }

    fn seal(&self, s: &mut CubeState, out: &mut CubeOutcome) {
        if let Some(seg) = s.open.take() {
            out.sealed.push(seg.to_record());
            s.sealed.push_back(seg);
            self.coarsen(s, out);
            while s.sealed.len() > self.cfg.max_sealed {
                let old = s.sealed.pop_front().expect("non-empty past cap");
                out.evicted.push(old.id);
            }
        }
    }

    /// Pressure-driven coarsening: while the sealed count exceeds the
    /// watermark, merge one adjacent pair into a coarser tier. The pair
    /// chosen is the one whose coarser member has the *lowest* tier
    /// (oldest such pair on ties) — the binary-counter shape LSM trees
    /// use, which keeps the deepest tier logarithmic in the number of
    /// seals instead of linear. Each merge is a Definition-1 one-shot
    /// merge, so range answers over the coarser segment keep the eps·n
    /// bound on its (admitted) weight — the window just snaps outward to
    /// coarser boundaries.
    fn coarsen(&self, s: &mut CubeState, out: &mut CubeOutcome) {
        if self.cfg.coarsen_watermark == 0 {
            return;
        }
        while s.sealed.len() > self.cfg.coarsen_watermark && s.sealed.len() >= 2 {
            let i = (0..s.sealed.len() - 1)
                .min_by_key(|&i| s.sealed[i].tier.max(s.sealed[i + 1].tier))
                .expect("at least one adjacent pair");
            let next = s.sealed.remove(i + 1).expect("index in bounds");
            out.evicted.push(next.id);
            let survivor = &mut s.sealed[i];
            survivor.absorb(next);
            out.sealed.push(survivor.to_record());
            out.coarsened += 1;
        }
        // A record both written and absorbed this call need not be
        // written at all, and only the last version per id matters.
        let evicted = &out.evicted;
        out.sealed.retain(|r| !evicted.contains(&r.id));
        let mut i = 0;
        while i < out.sealed.len() {
            if out.sealed[i + 1..].iter().any(|r| r.id == out.sealed[i].id) {
                out.sealed.remove(i);
            } else {
                i += 1;
            }
        }
    }

    fn fold(&self, s: &mut CubeState, seq: u64, now: u64, batch: &[u64]) -> CubeOutcome {
        let mut out = CubeOutcome {
            seq,
            ..CubeOutcome::default()
        };
        // Wall-clock boundary first: an aged open segment seals *before*
        // this batch, which then opens the next segment.
        if s.open
            .as_ref()
            .is_some_and(|o| now.saturating_sub(o.start_micros) >= self.cfg.seal_micros)
        {
            self.seal(s, &mut out);
        }
        if s.open.is_none() {
            let seg = Segment {
                id: s.next_id,
                start_seq: seq,
                end_seq: seq,
                start_micros: now,
                end_micros: now,
                weight: 0,
                batches: 0,
                tier: 0,
                fams: self.fresh_fams(),
            };
            s.next_id += 1;
            s.open = Some(seg);
        }
        let open = s.open.as_mut().expect("open segment just ensured");
        open.end_seq = seq;
        open.end_micros = now;
        open.batches += 1;
        open.weight += batch.len() as u64;
        for &item in batch {
            for fam in open.fams.iter_mut() {
                fam.update(item);
            }
        }
        if open.batches >= self.cfg.seal_batches {
            self.seal(s, &mut out);
        }
        out
    }

    /// Record one live batch, running `append` (the WAL append) inside
    /// the cube lock so the seq this assigns equals the WAL's. On append
    /// error nothing is recorded.
    pub fn record_with<E>(
        &self,
        batch: &[u64],
        append: impl FnOnce() -> Result<(), E>,
    ) -> Result<CubeOutcome, E> {
        let mut s = lock(&self.state);
        append()?;
        let now = self.now(&mut s);
        let seq = s.last_seq + 1;
        s.last_seq = seq;
        Ok(self.fold(&mut s, seq, now, batch))
    }

    /// Replay one recovered WAL batch at its original seq (recovery
    /// path — rebuilds segments lost between seal and fsync, and the
    /// open segment). Seqs at or below the cube's floor are ignored.
    pub fn record_at(&self, seq: u64, batch: &[u64]) -> CubeOutcome {
        let mut s = lock(&self.state);
        if seq <= s.last_seq {
            return CubeOutcome::default();
        }
        let now = self.now(&mut s);
        s.last_seq = seq;
        self.fold(&mut s, seq, now, batch)
    }

    /// Adopt sealed segments recovered from disk (called once at
    /// startup, before any replay). Stops at the first record whose
    /// summaries do not decode, preserving contiguity; the rest is
    /// rebuilt from the WAL.
    pub fn adopt(&self, records: &[SegmentRecord]) -> AdoptOutcome {
        let mut s = lock(&self.state);
        let mut out = AdoptOutcome::default();
        for rec in records {
            match Segment::from_record(rec) {
                Ok(seg) => {
                    s.last_seq = seg.end_seq;
                    s.last_micros = s.last_micros.max(seg.end_micros);
                    s.next_id = seg.id + 1;
                    s.sealed.push_back(seg);
                    out.adopted += 1;
                }
                Err(why) => {
                    out.dropped = records.len() - out.adopted;
                    out.notes.push(format!(
                        "segment {}: summaries undecodable ({why}); it and {} later \
                         segment(s) rebuilt from the WAL",
                        rec.id,
                        out.dropped - 1
                    ));
                    break;
                }
            }
        }
        while s.sealed.len() > self.cfg.max_sealed {
            let old = s.sealed.pop_front().expect("non-empty past cap");
            out.evicted.push(old.id);
        }
        self.persisted_floor.store(s.last_seq, Ordering::Release);
        out
    }

    /// Mark a sealed segment durable through `end_seq` (called after a
    /// successful [`ms_store::SegmentStore::write`]).
    pub fn note_persisted(&self, end_seq: u64) {
        self.persisted_floor.fetch_max(end_seq, Ordering::AcqRel);
    }

    /// Highest batch seq covered by a segment known durable on disk.
    /// WAL pruning must stay at or below this.
    pub fn persisted_floor(&self) -> u64 {
        self.persisted_floor.load(Ordering::Acquire)
    }

    /// Highest batch seq the cube has recorded.
    pub fn last_seq(&self) -> u64 {
        lock(&self.state).last_seq
    }

    /// Answer a time-window query from `kind`'s family: merge the
    /// summaries of every segment intersecting `[start, end]` micros
    /// (inclusive; the open segment included live). Returns `None` when
    /// no segment intersects. Segment times are monotone, so the
    /// covering set is the minimal contiguous run of segments whose
    /// spans intersect the window — exactly the segments whose batches
    /// a per-range oracle must replay.
    pub fn query(
        &self,
        start_micros: u64,
        end_micros: u64,
        kind: SummaryKind,
    ) -> (RangeMeta, Option<ShardSummary>) {
        let idx = family_index(kind);
        let s = lock(&self.state);
        let mut meta = RangeMeta {
            start_micros,
            end_micros,
            segments_merged: 0,
            open_included: false,
            covered_weight: 0,
            start_seq: 0,
            end_seq: 0,
        };
        let mut merged: Option<ShardSummary> = None;
        let all = s
            .sealed
            .iter()
            .map(|seg| (seg, false))
            .chain(s.open.iter().map(|seg| (seg, true)));
        for (seg, open) in all {
            if seg.batches == 0 || seg.start_micros > end_micros || seg.end_micros < start_micros {
                continue;
            }
            meta.segments_merged += 1;
            meta.open_included |= open;
            meta.covered_weight += seg.weight;
            if meta.segments_merged == 1 {
                meta.start_seq = seg.start_seq;
            }
            meta.end_seq = seg.end_seq;
            let part = seg.fams[idx].clone();
            merged = Some(match merged.take() {
                None => part,
                Some(mut acc) => {
                    acc.merge_in_place(part)
                        .expect("same-family segment summaries always merge");
                    acc
                }
            });
        }
        (meta, merged)
    }

    /// Current health gauges (sealed count, open-segment age/weight),
    /// read against the same monotone-clamped clock that stamps
    /// segments.
    pub fn health(&self) -> CubeHealth {
        let mut s = lock(&self.state);
        let now = self.now(&mut s);
        let (open_age_micros, open_weight) = match &s.open {
            Some(seg) => (now.saturating_sub(seg.start_micros), seg.weight),
            None => (0, 0),
        };
        CubeHealth {
            sealed: s.sealed.len() as u64,
            open_age_micros,
            open_weight,
            max_tier: s.sealed.iter().map(|seg| seg.tier).max().unwrap_or(0),
        }
    }

    /// The cube's index: sealed segments in id order, then the open one.
    pub fn report(&self) -> SegmentReport {
        let mut s = lock(&self.state);
        let now = self.now(&mut s);
        let mut segments: Vec<SegmentMeta> = s.sealed.iter().map(|seg| seg.meta(true)).collect();
        segments.extend(s.open.iter().map(|seg| seg.meta(false)));
        SegmentReport {
            now_micros: now,
            segments,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ManualClock;
    use std::sync::Arc;

    const EPS: f64 = 0.02;

    fn cube(cfg: SegmentConfig) -> SegmentCube {
        SegmentCube::new(EPS, 42, cfg)
    }

    fn ok(cube: &SegmentCube, batch: &[u64]) -> CubeOutcome {
        cube.record_with::<()>(batch, || Ok(())).unwrap()
    }

    #[test]
    fn count_boundary_seals_and_seqs_are_dense() {
        let c = cube(
            SegmentConfig::new()
                .seal_batches(2)
                .clock(Arc::new(ManualClock::new(0))),
        );
        let mut sealed = Vec::new();
        for i in 0..5u64 {
            let out = ok(&c, &[i, i, i]);
            assert_eq!(out.seq, i + 1);
            sealed.extend(out.sealed);
        }
        // 5 batches at 2/segment: segments [1,2] and [3,4] sealed, batch 5 open.
        assert_eq!(sealed.len(), 2);
        assert_eq!((sealed[0].start_seq, sealed[0].end_seq), (1, 2));
        assert_eq!((sealed[1].start_seq, sealed[1].end_seq), (3, 4));
        assert_eq!(sealed[1].id, 1);
        assert_eq!(sealed[0].weight, 6);
        let report = c.report();
        assert_eq!(report.segments.len(), 3);
        assert!(!report.segments[2].sealed);
        assert_eq!(report.segments[2].start_seq, 5);
    }

    #[test]
    fn wall_clock_boundary_seals_via_injected_clock() {
        let clock = Arc::new(ManualClock::new(0));
        let c = cube(
            SegmentConfig::new()
                .seal_batches(u64::MAX)
                .seal_micros(1_000)
                .clock(clock.clone()),
        );
        assert!(ok(&c, &[1]).sealed.is_empty());
        clock.advance(999);
        assert!(ok(&c, &[2]).sealed.is_empty(), "window not yet spanned");
        clock.advance(1);
        let out = ok(&c, &[3]);
        // The aged segment seals *before* batch 3, which opens segment 1.
        assert_eq!(out.sealed.len(), 1);
        assert_eq!((out.sealed[0].start_seq, out.sealed[0].end_seq), (1, 2));
        let report = c.report();
        assert_eq!(report.segments.last().unwrap().start_seq, 3);
    }

    #[test]
    fn clock_regression_is_clamped() {
        let clock = Arc::new(ManualClock::new(500));
        let c = cube(SegmentConfig::new().clock(clock.clone()));
        ok(&c, &[1]);
        clock.set(100);
        ok(&c, &[2]);
        let report = c.report();
        assert_eq!(report.segments[0].start_micros, 500);
        assert_eq!(report.segments[0].end_micros, 500, "never regresses");
        assert!(report.now_micros >= 500);
    }

    #[test]
    fn eviction_past_cap_reports_ids() {
        let c = cube(
            SegmentConfig::new()
                .seal_batches(1)
                .max_sealed(2)
                .clock(Arc::new(ManualClock::new(0))),
        );
        let mut evicted = Vec::new();
        for i in 0..5u64 {
            evicted.extend(ok(&c, &[i]).evicted);
        }
        assert_eq!(evicted, vec![0, 1, 2]);
        assert_eq!(c.report().segments.len(), 2);
    }

    #[test]
    fn query_merges_covering_segments_with_exact_weight() {
        let clock = Arc::new(ManualClock::new(0));
        let c = cube(SegmentConfig::new().seal_batches(2).clock(clock.clone()));
        // Segment 0 at t=[0,10], segment 1 at t=[20,30], open at t=40.
        ok(&c, &[1, 1]);
        clock.set(10);
        ok(&c, &[2, 2]);
        clock.set(20);
        ok(&c, &[3, 3]);
        clock.set(30);
        ok(&c, &[4, 4]);
        clock.set(40);
        ok(&c, &[5, 5]);

        let (meta, merged) = c.query(15, 35, SummaryKind::Mg);
        assert_eq!(meta.segments_merged, 1);
        assert!(!meta.open_included);
        assert_eq!(meta.covered_weight, 4);
        assert_eq!((meta.start_seq, meta.end_seq), (3, 4));
        let hh = merged.unwrap().heavy_hitters(0.3).unwrap();
        assert!(hh.iter().any(|&(item, _)| item == 3));

        let (meta, merged) = c.query(5, u64::MAX, SummaryKind::HybridQuantile);
        assert_eq!(meta.segments_merged, 3);
        assert!(meta.open_included);
        assert_eq!(meta.covered_weight, 10);
        assert!(merged.unwrap().quantile(0.5).unwrap().is_some());

        let (meta, merged) = c.query(100, 200, SummaryKind::Mg);
        assert_eq!(meta.segments_merged, 0);
        assert!(merged.is_none());
        assert_eq!(meta.covered_weight, 0);
    }

    #[test]
    fn replay_reproduces_the_same_segments() {
        let live = cube(
            SegmentConfig::new()
                .seal_batches(3)
                .clock(Arc::new(ManualClock::new(7))),
        );
        let replayed = cube(
            SegmentConfig::new()
                .seal_batches(3)
                .clock(Arc::new(ManualClock::new(7))),
        );
        let batches: Vec<Vec<u64>> = (0..10u64).map(|i| vec![i % 4; 5]).collect();
        for (i, b) in batches.iter().enumerate() {
            ok(&live, b);
            replayed.record_at(i as u64 + 1, b);
        }
        let (a, b) = (live.report(), replayed.report());
        assert_eq!(a.segments, b.segments);
        assert_eq!(live.last_seq(), replayed.last_seq());
    }

    #[test]
    fn adopt_restores_counters_and_floor() {
        let clock = Arc::new(ManualClock::new(0));
        let c = cube(SegmentConfig::new().seal_batches(2).clock(clock.clone()));
        let mut sealed = Vec::new();
        for i in 0..6u64 {
            clock.advance(5);
            sealed.extend(ok(&c, &[i; 4]).sealed);
        }
        assert_eq!(sealed.len(), 3);

        let fresh = cube(SegmentConfig::new().seal_batches(2).clock(clock.clone()));
        let out = fresh.adopt(&sealed);
        assert_eq!(out.adopted, 3);
        assert_eq!(out.dropped, 0);
        assert_eq!(fresh.last_seq(), 6);
        assert_eq!(fresh.persisted_floor(), 6);
        // Continue ingesting: the next segment gets the next dense id.
        let out = ok(&fresh, &[9]);
        assert_eq!(out.seq, 7);
        assert_eq!(fresh.report().segments.last().unwrap().id, 3);
        // And a full-range query sees everything.
        let (meta, _) = fresh.query(0, u64::MAX, SummaryKind::CountMin);
        assert_eq!(meta.covered_weight, 25);
    }

    #[test]
    fn adopt_stops_at_undecodable_summaries() {
        let c = cube(
            SegmentConfig::new()
                .seal_batches(1)
                .clock(Arc::new(ManualClock::new(0))),
        );
        let mut sealed = Vec::new();
        for i in 0..3u64 {
            sealed.extend(ok(&c, &[i]).sealed);
        }
        sealed[1].summaries[2] = vec![0xFF; 3];
        let fresh = cube(
            SegmentConfig::new()
                .seal_batches(1)
                .clock(Arc::new(ManualClock::new(0))),
        );
        let out = fresh.adopt(&sealed);
        assert_eq!(out.adopted, 1);
        assert_eq!(out.dropped, 2);
        assert_eq!(fresh.last_seq(), 1, "floor stops at the last good record");
        assert!(out.notes[0].contains("rebuilt from the WAL"));
    }

    #[test]
    fn coarsening_holds_sealed_count_at_the_watermark() {
        let c = cube(
            SegmentConfig::new()
                .seal_batches(1)
                .coarsen_watermark(4)
                .clock(Arc::new(ManualClock::new(0))),
        );
        let mut coarsened = 0;
        for i in 0..32u64 {
            let out = ok(&c, &[i % 7; 10]);
            coarsened += out.coarsened;
            assert!(
                c.health().sealed <= 4,
                "sealed count must never exceed the watermark after a seal"
            );
            // Bookkeeping: nothing asks the engine to both write and
            // delete the same id, and each id is written at most once.
            for rec in &out.sealed {
                assert!(!out.evicted.contains(&rec.id));
            }
            let mut ids: Vec<u64> = out.sealed.iter().map(|r| r.id).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), out.sealed.len());
        }
        assert!(coarsened >= 27, "28 seals over watermark 4: {coarsened}");

        // Lossless w.r.t. admitted weight: the full range still covers
        // every batch, contiguously.
        let (meta, merged) = c.query(0, u64::MAX, SummaryKind::Mg);
        assert_eq!(meta.covered_weight, 320);
        assert_eq!((meta.start_seq, meta.end_seq), (1, 32));
        // And the merged answer still finds the heavy item at eps·n:
        // item 0 fills 50/320 of the stream, well above phi - eps.
        let hh = merged.unwrap().heavy_hitters(0.1).unwrap();
        assert!(hh.iter().any(|&(item, _)| item == 0), "{hh:?}");
        assert!(c.health().max_tier >= 1, "tiers must be recorded");
    }

    #[test]
    fn equal_tier_pairing_keeps_merge_trees_shallow() {
        let c = cube(
            SegmentConfig::new()
                .seal_batches(1)
                .coarsen_watermark(2)
                .clock(Arc::new(ManualClock::new(0))),
        );
        for i in 0..16u64 {
            ok(&c, &[i]);
        }
        // 15 sealed segments squeezed into 2: balanced pairing keeps the
        // deepest tier logarithmic, not linear.
        let report = c.report();
        let max_tier = report.segments.iter().map(|m| m.tier).max().unwrap();
        assert!(
            (1..=5).contains(&max_tier),
            "expected log-ish tiers, got {max_tier}"
        );
        // Tier rides the wire in SegmentInfo.
        assert!(report.segments.iter().any(|m| m.tier > 0 && m.sealed));
    }

    #[test]
    fn coarsened_cube_adopts_and_replays_consistently() {
        let clock = Arc::new(ManualClock::new(0));
        let c = cube(
            SegmentConfig::new()
                .seal_batches(1)
                .coarsen_watermark(2)
                .clock(clock.clone()),
        );
        // Keep only the newest record per id — what the segment store
        // would hold after the engine applied every outcome in order.
        let mut disk: std::collections::BTreeMap<u64, SegmentRecord> =
            std::collections::BTreeMap::new();
        for i in 0..9u64 {
            let out = ok(&c, &[i; 3]);
            for rec in out.sealed {
                disk.insert(rec.id, rec);
            }
            for id in out.evicted {
                disk.remove(&id);
            }
        }
        let records: Vec<SegmentRecord> = disk.into_values().collect();
        let fresh = cube(
            SegmentConfig::new()
                .seal_batches(1)
                .coarsen_watermark(2)
                .clock(clock),
        );
        let adopted = fresh.adopt(&records);
        assert_eq!(adopted.adopted, records.len());
        assert_eq!(adopted.dropped, 0);
        let (a, b) = (c.report(), fresh.report());
        // The adopted cube sees the same sealed index, tiers included
        // (seal_batches(1) leaves no open segment to rebuild).
        let sealed_a: Vec<_> = a.segments.iter().filter(|m| m.sealed).collect();
        let sealed_b: Vec<_> = b.segments.iter().filter(|m| m.sealed).collect();
        assert_eq!(sealed_a, sealed_b);
        assert_eq!(fresh.persisted_floor(), 9);
    }

    #[test]
    fn health_tracks_sealed_count_and_open_segment_age() {
        let clock = Arc::new(ManualClock::new(0));
        let c = cube(SegmentConfig::new().seal_batches(2).clock(clock.clone()));
        assert_eq!(c.health(), CubeHealth::default(), "empty cube is all-zero");

        ok(&c, &[1, 2, 3]);
        clock.advance(40);
        let h = c.health();
        assert_eq!(h.sealed, 0);
        assert_eq!(h.open_age_micros, 40, "age reads the injected clock");
        assert_eq!(h.open_weight, 3);

        // Second batch hits the count boundary: the segment seals, the
        // open gauges reset to zero until the next batch arrives.
        ok(&c, &[4]);
        let h = c.health();
        assert_eq!(h.sealed, 1);
        assert_eq!(h.open_age_micros, 0);
        assert_eq!(h.open_weight, 0);
    }
}

//! Fault-injection seams.
//!
//! The engine consults a [`FaultPlan`] at every decision point where a real
//! deployment can fail: before a worker absorbs a batch (thread death,
//! scheduling stalls) and before the compactor merges a delta (compaction
//! lag). The default plan, [`NoFaults`], says "continue" everywhere and
//! costs two virtual calls per batch — the production path is unchanged.
//!
//! Plans must be deterministic functions of their inputs (shard id and a
//! cumulative per-shard batch index maintained by the engine) so that a
//! schedule is reproducible from a printed seed. `ms-faultsim` builds
//! seeded plans on top of this trait; unit tests can use closures via
//! [`plan_fn`].

use std::fmt;
use std::sync::Arc;

/// What a worker should do with the batch it is about to absorb.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Absorb the batch normally.
    Continue,
    /// Sleep this many milliseconds first (scheduling stall — saturates the
    /// bounded queue behind the worker and exercises backpressure).
    StallMs(u64),
    /// Die *now*, before absorbing the batch: the thread exits without
    /// handing off its pending delta, and everything still queued behind it
    /// is dropped — exactly what a crashed shard loses.
    Die,
}

/// A deterministic schedule of injected faults.
///
/// Implementations must be `Send + Sync` (consulted concurrently from every
/// worker and the compactor) and should derive their answers only from the
/// arguments, so the same seed replays the same schedule.
pub trait FaultPlan: Send + Sync + fmt::Debug {
    /// Consulted by worker `shard` before absorbing a batch. `batch_index`
    /// counts batches *cumulatively across respawns* of that shard, so "die
    /// at index k" fires exactly once even if the shard is restarted.
    fn worker_batch(&self, shard: usize, batch_index: u64) -> FaultAction {
        let _ = (shard, batch_index);
        FaultAction::Continue
    }

    /// Consulted by the compactor before merge number `merge_index`.
    /// Returns a stall in milliseconds (0 = no fault).
    fn compactor_merge(&self, merge_index: u64) -> u64 {
        let _ = merge_index;
        0
    }
}

/// The default plan: no faults anywhere.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl FaultPlan for NoFaults {}

/// A plan backed by a plain function, for tests:
/// `plan_fn(|shard, idx| if idx == 3 { FaultAction::Die } else { FaultAction::Continue })`.
pub fn plan_fn<F>(f: F) -> Arc<dyn FaultPlan>
where
    F: Fn(usize, u64) -> FaultAction + Send + Sync + 'static,
{
    struct FnPlan<F>(F);
    impl<F> fmt::Debug for FnPlan<F> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("FnPlan")
        }
    }
    impl<F> FaultPlan for FnPlan<F>
    where
        F: Fn(usize, u64) -> FaultAction + Send + Sync,
    {
        fn worker_batch(&self, shard: usize, batch_index: u64) -> FaultAction {
            (self.0)(shard, batch_index)
        }
    }
    Arc::new(FnPlan(f))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_always_continues() {
        let plan = NoFaults;
        for shard in 0..4 {
            for idx in 0..100 {
                assert_eq!(plan.worker_batch(shard, idx), FaultAction::Continue);
            }
        }
        assert_eq!(plan.compactor_merge(0), 0);
    }

    #[test]
    fn fn_plans_dispatch() {
        let plan = plan_fn(|shard, idx| {
            if shard == 1 && idx == 2 {
                FaultAction::Die
            } else {
                FaultAction::Continue
            }
        });
        assert_eq!(plan.worker_batch(0, 2), FaultAction::Continue);
        assert_eq!(plan.worker_batch(1, 2), FaultAction::Die);
        assert_eq!(format!("{plan:?}"), "FnPlan");
    }
}

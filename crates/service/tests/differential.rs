//! Differential tests: the sharded concurrent engine must satisfy the same
//! paper error bounds as a single-threaded summary of the identical seeded
//! stream. This is the mergeability theorem made operational — the
//! nondeterministic interleaving of worker hand-offs is just one more
//! arbitrary merge tree, so it cannot degrade the `εn` guarantee.

use ms_core::{FrequencyOracle, Summary};
use ms_service::{Engine, ServiceConfig, ShardSummary, SummaryKind};
use ms_workloads::StreamKind;

const N: usize = 200_000;
const EPS: f64 = 0.01;

fn stream(seed: u64) -> Vec<u64> {
    StreamKind::Zipf {
        s: 1.2,
        universe: 1 << 18,
    }
    .generate(N, seed)
}

/// Run `items` through a concurrent engine and return the final summary.
fn engine_summary(kind: SummaryKind, items: &[u64], shards: usize) -> ShardSummary {
    let cfg = ServiceConfig::new(kind, EPS)
        .shards(shards)
        .delta_updates(4_096)
        .seed(0xD1FF);
    let engine = Engine::start(cfg).unwrap();
    for chunk in items.chunks(1_000) {
        engine.ingest(chunk.to_vec()).unwrap();
    }
    let snapshot = engine.shutdown();
    assert_eq!(snapshot.summary.total_weight(), items.len() as u64);
    snapshot.summary.clone()
}

/// The single-threaded reference: one summary absorbing the whole stream.
fn reference_summary(kind: SummaryKind, items: &[u64]) -> ShardSummary {
    let cfg = ServiceConfig::new(kind, EPS).seed(0xD1FF);
    let mut s = ShardSummary::new(&cfg, 0);
    for &v in items {
        s.update(v);
    }
    s
}

/// Max |estimate − truth| over all items that actually occur.
fn max_point_error(summary: &ShardSummary, oracle: &FrequencyOracle<u64>) -> u64 {
    oracle
        .iter()
        .map(|(item, truth)| summary.point(*item).unwrap().abs_diff(truth))
        .max()
        .unwrap_or(0)
}

#[test]
fn mg_concurrent_matches_reference_bound() {
    let items = stream(11);
    let oracle = FrequencyOracle::from_stream(items.iter().copied());
    let bound = (EPS * N as f64).ceil() as u64;
    let concurrent = engine_summary(SummaryKind::Mg, &items, 4);
    let reference = reference_summary(SummaryKind::Mg, &items);
    assert!(max_point_error(&concurrent, &oracle) <= bound);
    assert!(max_point_error(&reference, &oracle) <= bound);
}

#[test]
fn space_saving_concurrent_matches_reference_bound() {
    let items = stream(12);
    let oracle = FrequencyOracle::from_stream(items.iter().copied());
    let bound = (EPS * N as f64).ceil() as u64;
    let concurrent = engine_summary(SummaryKind::SpaceSaving, &items, 4);
    let reference = reference_summary(SummaryKind::SpaceSaving, &items);
    assert!(max_point_error(&concurrent, &oracle) <= bound);
    assert!(max_point_error(&reference, &oracle) <= bound);
}

#[test]
fn count_min_concurrent_matches_reference_bound() {
    let items = stream(13);
    let oracle = FrequencyOracle::from_stream(items.iter().copied());
    // Count-Min: per-item overestimate within εn with probability 1−δ;
    // check every occurring item against the bound (seeded, so stable).
    let bound = (EPS * N as f64).ceil() as u64;
    let concurrent = engine_summary(SummaryKind::CountMin, &items, 4);
    let reference = reference_summary(SummaryKind::CountMin, &items);
    for (item, truth) in oracle.iter() {
        let est_c = concurrent.point(*item).unwrap();
        let est_r = reference.point(*item).unwrap();
        assert!(est_c >= truth, "count-min never underestimates");
        assert!(est_r >= truth);
        assert!(est_c - truth <= bound, "item {item}: {est_c} vs {truth}");
        assert!(est_r - truth <= bound);
    }
    // The linear sketch is *identical* regardless of sharding: merging
    // cell-wise additions commutes exactly, so the concurrent sketch equals
    // the single-threaded one cell for cell.
    for probe in 0..1_000u64 {
        assert_eq!(concurrent.point(probe), reference.point(probe));
    }
}

#[test]
fn hybrid_quantile_concurrent_matches_reference_bound() {
    let items = stream(14);
    let mut sorted = items.clone();
    sorted.sort_unstable();
    let true_rank = |x: u64| sorted.partition_point(|&v| v < x) as u64;
    let bound = (EPS * N as f64).ceil() as u64;

    let concurrent = engine_summary(SummaryKind::HybridQuantile, &items, 4);
    let reference = reference_summary(SummaryKind::HybridQuantile, &items);
    let probes: Vec<u64> = (1..40).map(|i| i * (1 << 18) / 40).collect();
    for &x in &probes {
        let truth = true_rank(x);
        assert!(
            concurrent.rank(x).unwrap().abs_diff(truth) <= bound,
            "concurrent rank({x})"
        );
        assert!(
            reference.rank(x).unwrap().abs_diff(truth) <= bound,
            "reference rank({x})"
        );
    }
}

#[test]
fn shard_count_does_not_change_the_guarantee() {
    let items = stream(15);
    let oracle = FrequencyOracle::from_stream(items.iter().copied());
    let bound = (EPS * N as f64).ceil() as u64;
    for shards in [1, 2, 4, 8] {
        let summary = engine_summary(SummaryKind::Mg, &items, shards);
        assert!(
            max_point_error(&summary, &oracle) <= bound,
            "{shards} shards"
        );
    }
}

//! Shutdown-ordering torture tests: drop-while-ingesting, concurrent
//! double-shutdown, and query-after-shutdown must all produce typed
//! errors (or valid answers), never a deadlock or a panic.
//!
//! Every test runs many seeded iterations under a watchdog: a deadlock
//! fails the test with a message instead of hanging the suite.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ms_core::{Rng64, ServiceError, Summary};
use ms_service::{Engine, ServiceConfig, SummaryKind};

const ITERATIONS: u64 = 120;

/// Run `f` on its own thread and fail loudly if it doesn't finish in
/// `secs` — a hung shutdown path must fail the test, not the CI job.
fn with_deadline<F: FnOnce() + Send + 'static>(secs: u64, what: &str, f: F) {
    let (done_tx, done_rx) = std::sync::mpsc::channel();
    let runner = std::thread::spawn(move || {
        f();
        let _ = done_tx.send(());
    });
    match done_rx.recv_timeout(Duration::from_secs(secs)) {
        Ok(()) => runner.join().unwrap(),
        Err(_) => panic!("{what}: deadlocked (no progress after {secs}s)"),
    }
}

fn small_engine(kind: SummaryKind, seed: u64) -> Arc<Engine> {
    Engine::start(
        ServiceConfig::new(kind, 0.05)
            .shards(2)
            .queue_depth(2)
            .delta_updates(64)
            .seed(seed),
    )
    .unwrap()
}

#[test]
fn shutdown_while_ingesting_errors_instead_of_deadlocking() {
    with_deadline(120, "shutdown-while-ingesting", || {
        let mut rng = Rng64::new(0x5D0_0001);
        let clean_exits = Arc::new(AtomicU64::new(0));
        for i in 0..ITERATIONS {
            let engine = small_engine(SummaryKind::Mg, i);
            let pusher = {
                let engine = Arc::clone(&engine);
                let clean_exits = Arc::clone(&clean_exits);
                std::thread::spawn(move || loop {
                    match engine.ingest(vec![1, 2, 3, 4]) {
                        Ok(()) => {}
                        Err(ServiceError::Shutdown) => {
                            clean_exits.fetch_add(1, Ordering::Relaxed);
                            return;
                        }
                        Err(other) => panic!("unexpected {other:?}"),
                    }
                })
            };
            // Shut down at a seeded, varying point in the ingest stream.
            std::thread::sleep(Duration::from_micros(rng.below(2_000)));
            let snap = engine.shutdown();
            // Whatever was accepted before the cut is fully visible.
            assert_eq!(snap.summary.total_weight(), engine.metrics().updates);
            pusher.join().unwrap();
        }
        // The pusher always exits via the typed Shutdown error.
        assert_eq!(clean_exits.load(Ordering::Relaxed), ITERATIONS);
    });
}

#[test]
fn concurrent_double_shutdown_is_idempotent() {
    with_deadline(120, "double-shutdown", || {
        for i in 0..ITERATIONS {
            let engine = small_engine(SummaryKind::SpaceSaving, i);
            for _ in 0..10 {
                engine.ingest(vec![9; 32]).unwrap();
            }
            let racers: Vec<_> = (0..2)
                .map(|_| {
                    let engine = Arc::clone(&engine);
                    std::thread::spawn(move || engine.shutdown().summary.total_weight())
                })
                .collect();
            let weights: Vec<u64> = racers.into_iter().map(|h| h.join().unwrap()).collect();
            // Both callers observe the same fully-drained final state.
            assert_eq!(weights[0], 320);
            assert_eq!(weights[1], 320);
            // And a third, sequential shutdown is a no-op.
            assert_eq!(engine.shutdown().summary.total_weight(), 320);
        }
    });
}

#[test]
fn queries_after_shutdown_answer_and_mutations_error() {
    with_deadline(120, "query-after-shutdown", || {
        for i in 0..ITERATIONS {
            let engine = small_engine(SummaryKind::HybridQuantile, i);
            for _ in 0..5 {
                engine.ingest((0..64).collect()).unwrap();
            }
            engine.shutdown();
            // Reads still serve from the final snapshot…
            let snap = engine.snapshot();
            assert_eq!(snap.summary.total_weight(), 320);
            assert!(snap.summary.rank(32).is_some());
            assert_eq!(engine.metrics().updates, 320);
            // …while every mutation is a typed error, not a hang.
            assert_eq!(engine.ingest(vec![1]), Err(ServiceError::Shutdown));
            assert_eq!(engine.try_ingest(vec![1]), Err(ServiceError::Shutdown));
            assert_eq!(engine.flush(), Err(ServiceError::Shutdown));
        }
    });
}

#[test]
fn clean_shutdown_preserves_every_acked_batch() {
    with_deadline(120, "shutdown-flush", || {
        let mut rng = Rng64::new(0x5D0_0002);
        for i in 0..ITERATIONS {
            let engine = small_engine(SummaryKind::Mg, i);
            // The pusher races shutdown and counts exactly the batches the
            // engine acknowledged with Ok before the cut.
            let pusher = {
                let engine = Arc::clone(&engine);
                std::thread::spawn(move || {
                    let mut acked = 0u64;
                    loop {
                        match engine.ingest(vec![1, 2, 3, 4, 5, 6, 7, 8]) {
                            Ok(()) => acked += 1,
                            Err(ServiceError::Shutdown) => return acked,
                            Err(other) => panic!("unexpected {other:?}"),
                        }
                    }
                })
            };
            std::thread::sleep(Duration::from_micros(rng.below(2_000)));
            let snap = engine.shutdown();
            let acked = pusher.join().unwrap();
            // Clean shutdown drains queues and in-flight deltas before the
            // workers exit: the final snapshot holds *exactly* the acked
            // batches — an Ok ingest is never lost, a rejected one never
            // counted.
            assert_eq!(
                snap.summary.total_weight(),
                acked * 8,
                "iteration {i}: acked {acked} batches of 8"
            );
        }
    });
}

#[test]
fn drop_without_shutdown_does_not_hang_the_process() {
    with_deadline(120, "drop-without-shutdown", || {
        for i in 0..ITERATIONS {
            let engine = small_engine(SummaryKind::CountMin, i);
            engine.ingest(vec![5; 100]).unwrap();
            // Dropping the last Arc without calling shutdown leaks no lock
            // and blocks nothing; worker threads exit when their queues
            // close at Engine drop.
            drop(engine);
        }
    });
}

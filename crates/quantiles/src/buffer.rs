//! Sorted buffers and the randomized same-weight merge (§4.1).
//!
//! A [`SortedBuffer`] holds `m` sorted points, each representing `w` input
//! values. [`SortedBuffer::same_weight_merge`] implements the paper's core
//! operation: merge-sort the `2m` points and keep either the even or the
//! odd positions with one fair coin flip. For any query `x`, the resulting
//! rank estimate differs from the pre-merge estimate by at most `w` and the
//! signed error is `±w/2` with equal probability — *zero in expectation* —
//! which is what makes whole merge trees behave like random walks rather
//! than accumulating worst cases.

use ms_core::wire::{Wire, WireError, WireReader};
use ms_core::Rng64;

/// A sorted buffer of points sharing one weight (the weight itself lives in
/// the hierarchy; buffers only know their points).
#[derive(Debug, Clone, PartialEq)]
pub struct SortedBuffer<T> {
    points: Vec<T>,
}

impl<T: Wire + Ord> Wire for SortedBuffer<T> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.points.encode_into(out);
    }

    fn decode_from(r: &mut WireReader<'_>) -> std::result::Result<Self, WireError> {
        let points = Vec::<T>::decode_from(r)?;
        if points.windows(2).any(|w| w[0] > w[1]) {
            return Err(WireError::Malformed("buffer points not sorted"));
        }
        Ok(SortedBuffer { points })
    }
}

impl<T: Ord + Clone> SortedBuffer<T> {
    /// Build from unsorted points.
    pub fn from_unsorted(mut points: Vec<T>) -> Self {
        points.sort_unstable();
        SortedBuffer { points }
    }

    /// Build from points already in ascending order.
    ///
    /// # Panics
    ///
    /// Panics (debug only) if the input is not sorted.
    pub fn from_sorted(points: Vec<T>) -> Self {
        debug_assert!(points.windows(2).all(|w| w[0] <= w[1]));
        SortedBuffer { points }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The sorted points.
    pub fn points(&self) -> &[T] {
        &self.points
    }

    /// Consume into the sorted point vector.
    pub fn into_points(self) -> Vec<T> {
        self.points
    }

    /// Number of points strictly less than `x`.
    pub fn count_below(&self, x: &T) -> usize {
        self.points.partition_point(|v| v < x)
    }

    /// The same-weight merge: merge-sort both buffers' points and keep the
    /// positions of one parity, chosen by a fair coin. Both inputs must
    /// hold points of equal weight `w`; the output's points represent
    /// weight `2w` each and there are `⌈(|a|+|b|)/2⌉` or `⌊…⌋` of them
    /// depending on the coin (equal counts when `|a|+|b|` is even).
    pub fn same_weight_merge(
        a: SortedBuffer<T>,
        b: SortedBuffer<T>,
        rng: &mut Rng64,
    ) -> SortedBuffer<T> {
        let merged = merge_sorted(a.points, b.points);
        let offset = usize::from(rng.coin());
        let points = merged
            .into_iter()
            .skip(offset)
            .step_by(2)
            .collect::<Vec<T>>();
        SortedBuffer { points }
    }
}

/// Standard two-way merge of sorted vectors.
fn merge_sorted<T: Ord>(a: Vec<T>, b: Vec<T>) -> Vec<T> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let mut ia = a.into_iter().peekable();
    let mut ib = b.into_iter().peekable();
    loop {
        match (ia.peek(), ib.peek()) {
            (Some(x), Some(y)) => {
                if x <= y {
                    out.push(ia.next().expect("peeked"));
                } else {
                    out.push(ib.next().expect("peeked"));
                }
            }
            (Some(_), None) => out.push(ia.next().expect("peeked")),
            (None, Some(_)) => out.push(ib.next().expect("peeked")),
            (None, None) => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_unsorted_sorts() {
        let b = SortedBuffer::from_unsorted(vec![3u64, 1, 2]);
        assert_eq!(b.points(), &[1, 2, 3]);
    }

    #[test]
    fn count_below_is_strict() {
        let b = SortedBuffer::from_sorted(vec![10u64, 20, 20, 30]);
        assert_eq!(b.count_below(&10), 0);
        assert_eq!(b.count_below(&20), 1);
        assert_eq!(b.count_below(&25), 3);
        assert_eq!(b.count_below(&99), 4);
    }

    #[test]
    fn merge_keeps_half_the_points() {
        let a = SortedBuffer::from_sorted((0..8u64).map(|i| 2 * i).collect());
        let b = SortedBuffer::from_sorted((0..8u64).map(|i| 2 * i + 1).collect());
        let mut rng = Rng64::new(1);
        let m = SortedBuffer::same_weight_merge(a, b, &mut rng);
        assert_eq!(m.len(), 8);
        assert!(m.points().windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn merge_takes_alternating_positions() {
        // Merged order is 0..8; even offset keeps 0,2,4,6; odd keeps 1,3,5,7.
        let a = SortedBuffer::from_sorted(vec![0u64, 2, 4, 6]);
        let b = SortedBuffer::from_sorted(vec![1u64, 3, 5, 7]);
        let mut seen = [false; 2];
        for seed in 0..32 {
            let mut rng = Rng64::new(seed);
            let m = SortedBuffer::same_weight_merge(a.clone(), b.clone(), &mut rng);
            match m.points() {
                [0, 2, 4, 6] => seen[0] = true,
                [1, 3, 5, 7] => seen[1] = true,
                other => panic!("unexpected selection {other:?}"),
            }
        }
        assert!(seen[0] && seen[1], "both parities must occur across seeds");
    }

    #[test]
    fn merge_rank_error_is_at_most_one_position() {
        // For any query, the estimated count below (×2 after merge) differs
        // from the combined input count by at most 1 point-weight.
        let mut rng = Rng64::new(7);
        for trial in 0..50u64 {
            let a = SortedBuffer::from_unsorted(
                (0..32)
                    .map(|i| (i * 7 + trial * 13) % 101)
                    .collect::<Vec<u64>>(),
            );
            let b = SortedBuffer::from_unsorted(
                (0..32)
                    .map(|i| (i * 11 + trial * 29) % 101)
                    .collect::<Vec<u64>>(),
            );
            let m = SortedBuffer::same_weight_merge(a.clone(), b.clone(), &mut rng);
            for x in [0u64, 25, 50, 75, 100] {
                let before = a.count_below(&x) + b.count_below(&x);
                let after = 2 * m.count_below(&x);
                assert!(
                    before.abs_diff(after) <= 1,
                    "trial {trial} x {x}: before {before}, after {after}"
                );
            }
        }
    }

    #[test]
    fn merge_error_is_unbiased_over_coins() {
        // Signed error averages to ~0 across many independent merges.
        let a = SortedBuffer::from_sorted((0..64u64).map(|i| 2 * i).collect());
        let b = SortedBuffer::from_sorted((0..64u64).map(|i| 2 * i + 1).collect());
        let x = 63u64;
        let before = (a.count_below(&x) + b.count_below(&x)) as i64;
        let mut total: i64 = 0;
        for seed in 0..400 {
            let mut rng = Rng64::new(seed);
            let m = SortedBuffer::same_weight_merge(a.clone(), b.clone(), &mut rng);
            total += 2 * m.count_below(&x) as i64 - before;
        }
        assert!(total.abs() <= 60, "bias {total} over 400 merges");
    }

    #[test]
    fn merge_of_empty_buffers() {
        let mut rng = Rng64::new(3);
        let e = SortedBuffer::<u64>::from_sorted(vec![]);
        let m = SortedBuffer::same_weight_merge(e.clone(), e, &mut rng);
        assert!(m.is_empty());
    }

    #[test]
    fn merge_sorted_interleaves() {
        assert_eq!(
            merge_sorted(vec![1, 3, 5], vec![2, 3, 4]),
            vec![1, 2, 3, 3, 4, 5]
        );
        assert_eq!(merge_sorted(Vec::<u32>::new(), vec![1]), vec![1]);
    }
}

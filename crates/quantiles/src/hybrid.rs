//! The fully-mergeable hybrid quantile summary (§4.3).
//!
//! Without advance knowledge of `n`, a plain buffer hierarchy would grow a
//! level per doubling of the data, so its size would depend on `n`. The
//! paper's fix: keep only `L = O(log(1/ε))` levels and replace the
//! discarded bottom of the hierarchy with **random sampling** — each
//! level-0 point becomes a uniform representative of a *block* of `w` raw
//! values, where the base weight `w` doubles whenever the hierarchy would
//! overflow. Sampling error is `O(w)` per point, which stays proportional
//! to `εn/ polylog` because `w` tracks `n / (m·2^L)`; merge coins stay
//! unbiased; total size is `O((1/ε)·log^{1.5}(1/ε))` — independent of `n`.
//!
//! Implementation notes (simulation substitutions, see `DESIGN.md`):
//!
//! * the paper's careful partial-block bookkeeping is implemented as a
//!   probability-proportional merge of partial blocks (when two partial
//!   blocks of `a` and `b` raw values combine, the surviving candidate is
//!   drawn with probabilities `a/(a+b)`, `b/(a+b)`); the residual bias is
//!   `O(w)` per merge node and is absorbed by the same slack that absorbs
//!   the merge coins — the experiments confirm the `εn` shape holds;
//! * doubling the base weight relabels the hierarchy downward (old level
//!   `i+1` is new level `i`), and the orphaned old level-0 buffer is fed
//!   back through the block sampler at its own weight.

use ms_core::error::ensure_same_capacity;
use ms_core::wire::{Wire, WireError, WireReader};
use ms_core::{MergeError, Mergeable, Result, Rng64, Summary};

use crate::buffer::SortedBuffer;
use crate::hierarchy::BufferHierarchy;
use crate::known_n::weighted_quantile;
use crate::RankSummary;

/// Internal failure probability target used to size buffers.
const DELTA: f64 = 0.01;

/// Fully mergeable quantile summary of size independent of `n`.
///
/// ```
/// use ms_core::Mergeable;
/// use ms_quantiles::{HybridQuantile, RankSummary};
///
/// let mut a = HybridQuantile::new(0.05, 1);
/// let mut b = HybridQuantile::new(0.05, 2);
/// for v in 0..500u64 {
///     a.insert(v);
///     b.insert(500 + v);
/// }
/// let merged = a.merge(b).unwrap();
/// assert_eq!(merged.count(), 1000);
/// let median = merged.quantile(0.5).unwrap();
/// assert!((450..=550).contains(&median));
/// ```
#[derive(Debug, Clone)]
pub struct HybridQuantile<T> {
    epsilon: f64,
    m: usize,
    max_levels: usize,
    /// Base weight: every level-0 point represents `w` raw values.
    w: u64,
    /// Raw values accumulated toward the current block (`0 ≤ count < w`).
    block_count: u64,
    /// Uniform candidate for the current partial block.
    block_candidate: Option<T>,
    /// Completed weight-`w` representatives, flushed to level 0 at `m`.
    base: Vec<T>,
    hierarchy: BufferHierarchy<T>,
    n: u64,
    rng: Rng64,
}

impl<T: Wire + Ord> Wire for HybridQuantile<T> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.epsilon.encode_into(out);
        self.m.encode_into(out);
        self.max_levels.encode_into(out);
        self.w.encode_into(out);
        self.block_count.encode_into(out);
        self.block_candidate.encode_into(out);
        self.base.encode_into(out);
        self.hierarchy.encode_into(out);
        self.n.encode_into(out);
        self.rng.encode_into(out);
    }

    fn decode_from(r: &mut WireReader<'_>) -> std::result::Result<Self, WireError> {
        let epsilon = f64::decode_from(r)?;
        if !(epsilon > 0.0 && epsilon < 1.0) {
            return Err(WireError::Malformed("epsilon out of (0, 1)"));
        }
        let m = usize::decode_from(r)?;
        let max_levels = usize::decode_from(r)?;
        let w = u64::decode_from(r)?;
        if !w.is_power_of_two() {
            return Err(WireError::Malformed("base weight not a power of two"));
        }
        let block_count = u64::decode_from(r)?;
        let block_candidate = Option::<T>::decode_from(r)?;
        if block_count > 0 && block_candidate.is_none() {
            return Err(WireError::Malformed("partial block lost its candidate"));
        }
        Ok(HybridQuantile {
            epsilon,
            m,
            max_levels,
            w,
            block_count,
            block_candidate,
            base: Vec::<T>::decode_from(r)?,
            hierarchy: BufferHierarchy::<T>::decode_from(r)?,
            n: u64::decode_from(r)?,
            rng: Rng64::decode_from(r)?,
        })
    }
}

impl<T: Ord + Clone> HybridQuantile<T> {
    /// Create a summary with rank-error target `ε·n` (w.h.p.), seeded for
    /// reproducible sampling and merge coins.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is not in `(0, 1)`.
    pub fn new(epsilon: f64, seed: u64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon < 1.0,
            "epsilon must be in (0, 1), got {epsilon}"
        );
        // Constant 4 (vs 2 for the known-n summary): the hybrid additionally
        // absorbs block-sampling error and deep merge trees double its base
        // weight repeatedly, so it needs the extra slack to hold εn at p100.
        let m = {
            let m = (4.0 / epsilon) * (2.0 / DELTA).ln().sqrt();
            (m.ceil() as usize).max(8)
        };
        let max_levels = ((1.0 / epsilon).log2().ceil() as usize).max(1) + 2;
        HybridQuantile {
            epsilon,
            m,
            max_levels,
            w: 1,
            block_count: 0,
            block_candidate: None,
            base: Vec::new(),
            hierarchy: BufferHierarchy::new(),
            n: 0,
            rng: Rng64::new(seed),
        }
    }

    /// The error parameter ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Buffer size `m`.
    pub fn buffer_capacity(&self) -> usize {
        self.m
    }

    /// Current base weight `w` (power of two).
    pub fn base_weight(&self) -> u64 {
        self.w
    }

    /// Level cap `L`.
    pub fn max_levels(&self) -> usize {
        self.max_levels
    }

    /// Feed `count` raw-value equivalents represented by `candidate` into
    /// the block sampler, emitting completed weight-`w` representatives.
    fn absorb_block(&mut self, candidate: T, count: u64) {
        if count == 0 {
            return;
        }
        self.block_count += count;
        match &self.block_candidate {
            None => self.block_candidate = Some(candidate),
            Some(_) => {
                // Keep the newcomer with probability count / block_count —
                // the probability-proportional partial-block merge.
                if self.rng.below(self.block_count) < count {
                    self.block_candidate = Some(candidate);
                }
            }
        }
        while self.block_count >= self.w {
            let rep = self
                .block_candidate
                .clone()
                .expect("non-zero block has a candidate");
            self.block_count -= self.w;
            if self.block_count == 0 {
                self.block_candidate = None;
            }
            self.push_representative(rep);
        }
    }

    /// Append a completed weight-`w` representative, flushing full base
    /// buffers into the hierarchy and enforcing the level cap.
    fn push_representative(&mut self, rep: T) {
        self.base.push(rep);
        if self.base.len() >= self.m {
            let buffer = SortedBuffer::from_unsorted(std::mem::take(&mut self.base));
            self.hierarchy.push_buffer(0, buffer, &mut self.rng);
            self.enforce_level_cap();
        }
    }

    /// Double the base weight once: relabel hierarchy levels downward
    /// (old level `i+1` is new level `i`), and re-feed everything that was
    /// stored at the old weight — the orphaned old level-0 buffer *and*
    /// the pending base representatives — through the block sampler at
    /// their true old weight. (Re-weighting them silently would inflate
    /// the stored mass and bias every rank estimate upward.)
    fn double_base_weight(&mut self) {
        let old_w = self.w;
        self.w *= 2;
        let old_base = std::mem::take(&mut self.base);
        let orphan = self.hierarchy.shift_down();
        for rep in old_base {
            self.absorb_block(rep, old_w);
        }
        if let Some(buffer) = orphan {
            for point in buffer.into_points() {
                self.absorb_block(point, old_w);
            }
        }
    }

    /// While the hierarchy exceeds `max_levels`, double the base weight.
    fn enforce_level_cap(&mut self) {
        while self.hierarchy.num_levels() > self.max_levels {
            self.double_base_weight();
        }
    }

    /// Bring the summary's base weight up to `target` (a power-of-two
    /// multiple of the current weight) by repeated doubling.
    fn coarsen_to(&mut self, target: u64) {
        while self.w < target {
            self.double_base_weight();
        }
    }

    /// In-place §4.3 merge: the same weight alignment, hierarchy absorb
    /// and partial-block combine as [`Mergeable::merge`], but mutating
    /// `self` instead of consuming and reallocating it — the compactor's
    /// steady-state path. On error (mismatched ε or m) `self` is left
    /// untouched.
    pub fn merge_from(&mut self, mut other: Self) -> Result<()> {
        if (self.epsilon - other.epsilon).abs() > f64::EPSILON {
            return Err(MergeError::EpsilonMismatch {
                left: self.epsilon,
                right: other.epsilon,
            });
        }
        ensure_same_capacity("buffer size (m)", self.m, other.m)?;
        self.rng.absorb(&other.rng);
        // Align base weights by coarsening the finer summary.
        let target = self.w.max(other.w);
        self.coarsen_to(target);
        other.coarsen_to(target);

        self.n += other.n;
        self.hierarchy.absorb(other.hierarchy, &mut self.rng);
        self.enforce_level_cap();
        for rep in std::mem::take(&mut other.base) {
            self.push_representative(rep);
        }
        if let Some(candidate) = other.block_candidate.take() {
            self.absorb_block(candidate, other.block_count);
        }
        self.enforce_level_cap();
        Ok(())
    }

    /// All stored points with their weights (the partial block contributes
    /// its candidate at the block's accumulated count).
    fn weighted_points(&self) -> Vec<(T, u64)> {
        let mut out: Vec<(T, u64)> = self.base.iter().map(|v| (v.clone(), self.w)).collect();
        self.hierarchy.collect_weighted(self.w, &mut out);
        if let (Some(c), count) = (&self.block_candidate, self.block_count) {
            if count > 0 {
                out.push((c.clone(), count));
            }
        }
        out
    }
}

impl<T: Ord + Clone + ms_core::ToJson> ms_core::ToJson for HybridQuantile<T> {
    fn to_json(&self) -> ms_core::Json {
        use ms_core::Json;
        Json::obj([
            ("epsilon", Json::F64(self.epsilon)),
            ("m", Json::U64(self.m as u64)),
            ("w", Json::U64(self.w)),
            ("block_count", Json::U64(self.block_count)),
            ("block_candidate", self.block_candidate.to_json()),
            ("base", Json::arr(self.base.iter())),
            (
                "levels",
                Json::Arr(
                    (0..self.hierarchy.num_levels())
                        .map(|_| Json::Null)
                        .collect(),
                ),
            ),
            (
                "points",
                Json::Arr(
                    self.weighted_points()
                        .iter()
                        .map(|(p, w)| Json::Arr(vec![p.to_json(), Json::U64(*w)]))
                        .collect(),
                ),
            ),
            ("n", Json::U64(self.n)),
        ])
    }
}

impl<T: Ord + Clone> RankSummary<T> for HybridQuantile<T> {
    fn insert(&mut self, value: T) {
        self.n += 1;
        self.absorb_block(value, 1);
    }

    fn count(&self) -> u64 {
        self.n
    }

    fn rank(&self, x: &T) -> u64 {
        let mut rank = self.hierarchy.weighted_count_below(x, self.w);
        rank += self.w * self.base.iter().filter(|v| *v < x).count() as u64;
        if let Some(c) = &self.block_candidate {
            if c < x {
                rank += self.block_count;
            }
        }
        rank
    }

    fn quantile(&self, phi: f64) -> Option<T> {
        weighted_quantile(self.weighted_points(), phi)
    }
}

impl<T: Ord + Clone> Summary for HybridQuantile<T> {
    fn total_weight(&self) -> u64 {
        self.n
    }

    fn size(&self) -> usize {
        self.base.len()
            + self.hierarchy.stored_points()
            + usize::from(self.block_candidate.is_some())
    }
}

impl<T: Ord + Clone> Mergeable for HybridQuantile<T> {
    fn merge(mut self, other: Self) -> Result<Self> {
        self.merge_from(other)?;
        Ok(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ms_core::{merge_all, MergeTree, RankOracle};
    use ms_workloads::ValueDist;

    fn build(values: &[u64], eps: f64, seed: u64) -> HybridQuantile<u64> {
        let mut q = HybridQuantile::new(eps, seed);
        for &v in values {
            q.insert(v);
        }
        q
    }

    fn max_rank_error(q: &HybridQuantile<u64>, oracle: &RankOracle<u64>) -> f64 {
        let n = oracle.len() as f64;
        (0..=100)
            .filter_map(|i| oracle.quantile(i as f64 / 100.0).copied())
            .map(|x| oracle.rank_error(&x, q.rank(&x)) as f64 / n)
            .fold(0.0, f64::max)
    }

    #[test]
    fn exact_for_tiny_streams() {
        let q = build(&[4, 2, 7], 0.1, 0);
        assert_eq!(q.count(), 3);
        assert_eq!(q.rank(&7), 2);
        assert_eq!(q.quantile(0.5), Some(4));
    }

    #[test]
    fn empty_summary() {
        let q = HybridQuantile::<u64>::new(0.1, 0);
        assert_eq!(q.quantile(0.3), None);
        assert_eq!(q.rank(&1), 0);
    }

    #[test]
    fn total_stored_weight_matches_n() {
        // Weight accounting must be exact: blocks + base + hierarchy = n
        // whenever no same-weight merge has dropped/added a point (we can't
        // guarantee that in general, so allow the merge slack).
        let values = ValueDist::Uniform.generate(10_000, 3);
        let q = build(&values, 0.05, 1);
        let total: u64 = q.weighted_points().iter().map(|&(_, w)| w).sum();
        let slack = (q.base_weight() * (q.max_levels() as u64 + 2)).max(16);
        assert!(
            total.abs_diff(q.count()) <= slack,
            "stored weight {total} vs n {} (slack {slack})",
            q.count()
        );
    }

    #[test]
    fn size_is_independent_of_n() {
        let eps = 0.05;
        let sizes: Vec<usize> = [1 << 12, 1 << 15, 1 << 18, 1 << 20]
            .iter()
            .map(|&n| build(&ValueDist::Uniform.generate(n, 7), eps, 7).size())
            .collect();
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap().max(&1);
        assert!(max < 3 * min, "sizes should plateau, got {sizes:?}");
        // And the plateau is O((1/ε)·log^1.5(1/ε)), far below n.
        assert!(max < 4096, "size {max} too large for eps {eps}");
    }

    #[test]
    fn base_weight_doubles_as_data_grows() {
        let eps = 0.1;
        let q_small = build(&ValueDist::Uniform.generate(1 << 10, 2), eps, 2);
        let q_large = build(&ValueDist::Uniform.generate(1 << 18, 2), eps, 2);
        assert!(q_large.base_weight() > q_small.base_weight());
        assert!(q_large.base_weight().is_power_of_two());
    }

    #[test]
    fn rank_error_within_epsilon_on_streams() {
        let eps = 0.05;
        for dist in ValueDist::canonical() {
            let values = dist.generate(100_000, 13);
            let oracle = RankOracle::from_stream(values.clone());
            let q = build(&values, eps, 99);
            let err = max_rank_error(&q, &oracle);
            assert!(err <= eps, "{}: max rank error {err} > {eps}", dist.label());
        }
    }

    #[test]
    fn rank_error_within_epsilon_under_merge_trees() {
        let eps = 0.05;
        let values = ValueDist::Uniform.generate(65_536, 17);
        let oracle = RankOracle::from_stream(values.clone());
        for shape in MergeTree::canonical() {
            let leaves: Vec<HybridQuantile<u64>> = values
                .chunks(4096)
                .enumerate()
                .map(|(i, chunk)| build(chunk, eps, 500 + i as u64))
                .collect();
            let merged = merge_all(leaves, shape).unwrap();
            assert_eq!(merged.count(), values.len() as u64);
            let err = max_rank_error(&merged, &oracle);
            assert!(
                err <= eps,
                "{}: max rank error {err} > {eps}",
                shape.label()
            );
        }
    }

    #[test]
    fn merging_summaries_of_very_different_sizes() {
        let eps = 0.05;
        let big_values = ValueDist::Uniform.generate(1 << 17, 19);
        let small_values = ValueDist::Uniform.generate(100, 23);
        let big = build(&big_values, eps, 1);
        let small = build(&small_values, eps, 2);
        assert!(big.base_weight() > small.base_weight());
        let merged = big.merge(small).unwrap();
        let mut all = big_values;
        all.extend(small_values);
        let oracle = RankOracle::from_stream(all);
        let err = max_rank_error(&merged, &oracle);
        assert!(err <= eps, "max rank error {err}");
    }

    #[test]
    fn merged_size_stays_bounded() {
        let eps = 0.05;
        let values = ValueDist::Uniform.generate(1 << 18, 29);
        let leaves: Vec<HybridQuantile<u64>> = values
            .chunks(1 << 12)
            .enumerate()
            .map(|(i, chunk)| build(chunk, eps, i as u64))
            .collect();
        let single = build(&values, eps, 0);
        let merged = merge_all(leaves, MergeTree::Balanced).unwrap();
        assert!(
            merged.size() <= 2 * single.size().max(64),
            "merged size {} vs single-stream size {}",
            merged.size(),
            single.size()
        );
    }

    #[test]
    fn merge_from_matches_consuming_merge_and_survives_mismatch() {
        let eps = 0.05;
        let values = ValueDist::Uniform.generate(40_000, 41);
        let (left, right) = values.split_at(20_000);
        let mut in_place = build(left, eps, 5);
        in_place.merge_from(build(right, eps, 6)).unwrap();
        let consuming = build(left, eps, 5).merge(build(right, eps, 6)).unwrap();
        let quantiles = |q: &HybridQuantile<u64>| {
            (0..=10)
                .map(|i| q.quantile(i as f64 / 10.0).unwrap())
                .collect::<Vec<u64>>()
        };
        assert_eq!(in_place.count(), consuming.count());
        assert_eq!(quantiles(&in_place), quantiles(&consuming));

        // A mismatch reports the error without touching self.
        let before = quantiles(&in_place);
        assert!(matches!(
            in_place.merge_from(HybridQuantile::new(0.2, 0)),
            Err(MergeError::EpsilonMismatch { .. })
        ));
        assert_eq!(quantiles(&in_place), before);
        assert_eq!(in_place.count(), 40_000);
    }

    #[test]
    fn merge_rejects_mismatched_epsilon() {
        let a = HybridQuantile::<u64>::new(0.1, 0);
        let b = HybridQuantile::<u64>::new(0.2, 0);
        assert!(matches!(
            a.merge(b),
            Err(MergeError::EpsilonMismatch { .. })
        ));
    }

    #[test]
    fn extreme_epsilon_values() {
        // Coarse summary (eps near 1): tiny, still answers.
        let mut coarse = HybridQuantile::new(0.9, 1);
        for v in 0..10_000u64 {
            coarse.insert(v);
        }
        assert!(coarse.size() <= 64, "size {}", coarse.size());
        assert!(coarse.quantile(0.5).is_some());
        // Values at the u64 extremes survive intact.
        let mut edge = HybridQuantile::new(0.2, 2);
        edge.insert(0u64);
        edge.insert(u64::MAX);
        assert_eq!(edge.quantile(0.0), Some(0));
        assert_eq!(edge.quantile(1.0), Some(u64::MAX));
    }

    #[test]
    fn deterministic_given_seeds() {
        let values = ValueDist::Normal.generate(50_000, 31);
        let run = || {
            let q = build(&values, 0.05, 77);
            (0..=10)
                .map(|i| q.quantile(i as f64 / 10.0).unwrap())
                .collect::<Vec<u64>>()
        };
        assert_eq!(run(), run());
    }
}

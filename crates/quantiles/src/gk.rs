//! The Greenwald-Khanna summary — the classic *streaming* quantile summary,
//! used as the non-mergeable baseline (experiment E6).
//!
//! GK maintains tuples `(v, g, Δ)` where `g` is the gap in minimum rank to
//! the previous tuple and `Δ` bounds the rank uncertainty of the tuple
//! itself; the invariant `g + Δ ≤ 2εn` guarantees every rank query within
//! `εn`. It is the most space-efficient deterministic streaming summary
//! known, but it is **not known to be mergeable**: the standard combine
//! (interleave tuple lists, inflating each Δ by the uncertainty of the
//! other summary) makes the absolute error *add* across merges, so a chain
//! of `t` merges degrades to `Θ(t·εn)` — exactly the failure mode the
//! paper's randomized summary avoids. [`GkSummary::merge`] implements that
//! standard combine so the degradation can be measured.

use ms_core::wire::{Wire, WireError, WireReader};
use ms_core::{MergeError, Mergeable, Result, Summary};

use crate::RankSummary;

/// One GK tuple.
#[derive(Debug, Clone, PartialEq)]
struct Tuple<T> {
    value: T,
    /// Rank gap to the previous tuple: `r_min(i) = Σ_{j ≤ i} g_j`.
    g: u64,
    /// Rank uncertainty: `r_max(i) = r_min(i) + Δ_i`.
    delta: u64,
}

impl<T: Wire> Wire for Tuple<T> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.value.encode_into(out);
        self.g.encode_into(out);
        self.delta.encode_into(out);
    }

    fn decode_from(r: &mut WireReader<'_>) -> std::result::Result<Self, WireError> {
        Ok(Tuple {
            value: T::decode_from(r)?,
            g: u64::decode_from(r)?,
            delta: u64::decode_from(r)?,
        })
    }
}

/// Greenwald-Khanna ε-approximate quantile summary.
#[derive(Debug, Clone)]
pub struct GkSummary<T> {
    epsilon: f64,
    tuples: Vec<Tuple<T>>,
    n: u64,
    since_compress: usize,
}

impl<T: Wire> Wire for GkSummary<T> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.epsilon.encode_into(out);
        self.tuples.encode_into(out);
        self.n.encode_into(out);
        self.since_compress.encode_into(out);
    }

    fn decode_from(r: &mut WireReader<'_>) -> std::result::Result<Self, WireError> {
        let epsilon = f64::decode_from(r)?;
        if !(epsilon > 0.0 && epsilon < 1.0) {
            return Err(WireError::Malformed("epsilon out of (0, 1)"));
        }
        let tuples = Vec::<Tuple<T>>::decode_from(r)?;
        let n = u64::decode_from(r)?;
        if tuples.iter().map(|t| t.g).sum::<u64>() > n {
            return Err(WireError::Malformed("GK rank gaps exceed n"));
        }
        Ok(GkSummary {
            epsilon,
            tuples,
            n,
            since_compress: usize::decode_from(r)?,
        })
    }
}

impl<T: Ord + Clone> GkSummary<T> {
    /// Create a summary with rank-error target `ε·n`.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is not in `(0, 1)`.
    pub fn new(epsilon: f64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon < 1.0,
            "epsilon must be in (0, 1), got {epsilon}"
        );
        GkSummary {
            epsilon,
            tuples: Vec::new(),
            n: 0,
            since_compress: 0,
        }
    }

    /// The error parameter ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Current invariant threshold `2εn`.
    fn threshold(&self) -> u64 {
        (2.0 * self.epsilon * self.n as f64).floor() as u64
    }

    /// Remove tuples whose rank information a successor can absorb without
    /// violating `g_i + g_{i+1} + Δ_{i+1} ≤ 2εn`.
    fn compress(&mut self) {
        if self.tuples.len() < 3 {
            return;
        }
        let threshold = self.threshold();
        let mut kept: Vec<Tuple<T>> = Vec::with_capacity(self.tuples.len());
        // Never drop the first or last tuple (they pin min/max).
        let mut iter = self.tuples.drain(..);
        let mut current = iter.next().expect("len >= 3");
        let mut last_index_is_final = false;
        for next in iter {
            // `current` may be merged into `next` if the combined band fits
            // and `current` is not the very first kept tuple.
            let can_merge = !kept.is_empty() && current.g + next.g + next.delta <= threshold;
            if can_merge {
                let merged = Tuple {
                    value: next.value,
                    g: current.g + next.g,
                    delta: next.delta,
                };
                current = merged;
            } else {
                kept.push(current);
                current = next;
            }
            last_index_is_final = false;
        }
        let _ = last_index_is_final;
        kept.push(current);
        self.tuples = kept;
    }
}

impl<T: Ord + Clone> RankSummary<T> for GkSummary<T> {
    fn insert(&mut self, value: T) {
        self.n += 1;
        let threshold = self.threshold();
        // Find the first tuple with a value >= the newcomer.
        let pos = self.tuples.partition_point(|t| t.value < value);
        let delta = if pos == 0 || pos == self.tuples.len() {
            0 // new minimum or maximum is known exactly
        } else {
            threshold.saturating_sub(1)
        };
        self.tuples.insert(pos, Tuple { value, g: 1, delta });
        self.since_compress += 1;
        let period = ((1.0 / (2.0 * self.epsilon)).floor() as usize).max(1);
        if self.since_compress >= period {
            self.compress();
            self.since_compress = 0;
        }
    }

    fn count(&self) -> u64 {
        self.n
    }

    fn rank(&self, x: &T) -> u64 {
        // For x between tuples i and i+1, the true rank lies in
        // [r_min(i), r_max(i+1) − 1]; answer the midpoint.
        let mut r_min_prev = 0u64; // r_min of the last tuple with value < x
        let mut iter = self.tuples.iter();
        let mut bracket_hi: Option<u64> = None;
        for t in &mut iter {
            if t.value < *x {
                r_min_prev += t.g;
            } else {
                bracket_hi = Some(r_min_prev + t.g + t.delta - 1);
                break;
            }
        }
        match bracket_hi {
            Some(hi) => (r_min_prev + hi.max(r_min_prev)) / 2,
            // x exceeds every stored value: all n elements are below it.
            None => {
                if self.tuples.is_empty() {
                    0
                } else {
                    self.n
                }
            }
        }
    }

    fn quantile(&self, phi: f64) -> Option<T> {
        if self.tuples.is_empty() {
            return None;
        }
        let phi = phi.clamp(0.0, 1.0);
        let target = ((phi * self.n as f64).ceil() as u64).clamp(1, self.n);
        let bound = target + self.threshold() / 2;
        let mut r_min = 0u64;
        let mut prev: Option<&Tuple<T>> = None;
        for t in &self.tuples {
            r_min += t.g;
            if r_min + t.delta > bound {
                return Some(prev.map_or_else(|| t.value.clone(), |p| p.value.clone()));
            }
            prev = Some(t);
        }
        self.tuples.last().map(|t| t.value.clone())
    }
}

impl<T: Ord + Clone> Summary for GkSummary<T> {
    fn total_weight(&self) -> u64 {
        self.n
    }

    fn size(&self) -> usize {
        self.tuples.len()
    }
}

impl<T: Ord + Clone> Mergeable for GkSummary<T> {
    /// The standard GK combine: interleave the tuple lists by value; a
    /// tuple inherits its own Δ plus the uncertainty of the other summary
    /// at its position (the `g + Δ − 1` of the other side's next tuple).
    /// Correct, but the *absolute* error adds: merged error ≤
    /// `ε·n₁ + ε·n₂ + …` grows with every merge — this is the measured
    /// baseline, not a fully mergeable summary.
    fn merge(mut self, mut other: Self) -> Result<Self> {
        if (self.epsilon - other.epsilon).abs() > f64::EPSILON {
            return Err(MergeError::EpsilonMismatch {
                left: self.epsilon,
                right: other.epsilon,
            });
        }
        let a = std::mem::take(&mut self.tuples);
        let b = std::mem::take(&mut other.tuples);
        let mut merged: Vec<Tuple<T>> = Vec::with_capacity(a.len() + b.len());
        let mut ia = a.into_iter().peekable();
        let mut ib = b.into_iter().peekable();
        loop {
            let take_a = match (ia.peek(), ib.peek()) {
                (Some(x), Some(y)) => x.value <= y.value,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            if take_a {
                let mut t = ia.next().expect("peeked");
                if let Some(nb) = ib.peek() {
                    t.delta += nb.g + nb.delta - 1;
                }
                merged.push(t);
            } else {
                let mut t = ib.next().expect("peeked");
                if let Some(na) = ia.peek() {
                    t.delta += na.g + na.delta - 1;
                }
                merged.push(t);
            }
        }
        self.tuples = merged;
        self.n += other.n;
        self.compress();
        Ok(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ms_core::RankOracle;
    use ms_workloads::ValueDist;

    fn build(values: &[u64], eps: f64) -> GkSummary<u64> {
        let mut gk = GkSummary::new(eps);
        for &v in values {
            gk.insert(v);
        }
        gk
    }

    fn max_rank_error(gk: &GkSummary<u64>, oracle: &RankOracle<u64>) -> f64 {
        let n = oracle.len() as f64;
        (0..=100)
            .filter_map(|i| oracle.quantile(i as f64 / 100.0).copied())
            .map(|x| oracle.rank_error(&x, gk.rank(&x)) as f64 / n)
            .fold(0.0, f64::max)
    }

    #[test]
    fn tiny_stream_is_exact() {
        let gk = build(&[3, 1, 2], 0.1);
        assert_eq!(gk.count(), 3);
        assert_eq!(gk.quantile(0.0), Some(1));
        assert_eq!(gk.quantile(1.0), Some(3));
    }

    #[test]
    fn empty_summary() {
        let gk = GkSummary::<u64>::new(0.1);
        assert_eq!(gk.quantile(0.5), None);
        assert_eq!(gk.rank(&5), 0);
    }

    #[test]
    fn rank_error_within_epsilon_on_streams() {
        let eps = 0.02;
        for dist in ValueDist::canonical() {
            let values = dist.generate(50_000, 41);
            let oracle = RankOracle::from_stream(values.clone());
            let gk = build(&values, eps);
            let err = max_rank_error(&gk, &oracle);
            assert!(
                err <= eps + 1e-9,
                "{}: max rank error {err} > {eps}",
                dist.label()
            );
        }
    }

    #[test]
    fn space_is_far_below_n() {
        let values = ValueDist::Uniform.generate(100_000, 43);
        let gk = build(&values, 0.01);
        assert!(
            gk.size() < 2_000,
            "GK with eps=0.01 stored {} tuples",
            gk.size()
        );
    }

    #[test]
    fn single_merge_stays_within_twice_epsilon() {
        let eps = 0.02;
        let values = ValueDist::Uniform.generate(40_000, 47);
        let (l, r) = values.split_at(20_000);
        let merged = build(l, eps).merge(build(r, eps)).unwrap();
        let oracle = RankOracle::from_stream(values.clone());
        let err = max_rank_error(&merged, &oracle);
        assert!(err <= 2.0 * eps + 1e-9, "one merge error {err}");
    }

    #[test]
    fn chained_merges_blow_up_size() {
        // The point of the baseline: the folk GK combine keeps the error
        // near εn by inflating tuple bands, so compress can no longer
        // shrink the summary — chained merges pay in *space* (a fully
        // mergeable summary keeps both fixed).
        let eps = 0.02;
        let values = ValueDist::Uniform.generate(64_000, 53);
        let oracle = RankOracle::from_stream(values.clone());
        let mut acc = build(&values[..4_000], eps);
        for chunk in values[4_000..].chunks(4_000) {
            acc = acc.merge(build(chunk, eps)).unwrap();
        }
        let single = build(&values, eps);
        assert!(
            acc.size() > 2 * single.size(),
            "chained size {} should exceed single-stream size {}",
            acc.size(),
            single.size()
        );
        // Error stays within the folk bound (≈ Σ εnᵢ = εn, plus compress
        // slack) — the degradation is in space, not accuracy.
        let chained_err = max_rank_error(&acc, &oracle);
        assert!(chained_err <= 2.0 * eps, "chained error {chained_err}");
    }

    #[test]
    fn merge_rejects_mismatched_epsilon() {
        let a = GkSummary::<u64>::new(0.1);
        let b = GkSummary::<u64>::new(0.2);
        assert!(matches!(
            a.merge(b),
            Err(MergeError::EpsilonMismatch { .. })
        ));
    }

    #[test]
    fn quantiles_of_sorted_stream() {
        let values: Vec<u64> = (0..10_000).collect();
        let gk = build(&values, 0.01);
        for phi in [0.1, 0.5, 0.9] {
            let est = gk.quantile(phi).unwrap() as f64;
            let expected = phi * 10_000.0;
            assert!((est - expected).abs() <= 200.0, "phi {phi}: estimate {est}");
        }
    }
}

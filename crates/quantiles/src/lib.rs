//! Mergeable quantile summaries (PODS'12, §4).
//!
//! The paper's second main result: quantile (rank) summaries that survive
//! arbitrary merges. The building block is the **randomized same-weight
//! merge** ([`buffer`]): two sorted buffers of `m` points, each point
//! representing weight `w`, merge into one buffer of `m` points of weight
//! `2w` by keeping either the odd or the even positions of the merged order
//! — a single fair coin per merge. The resulting rank error is *unbiased*,
//! so errors across a whole merge tree cancel like a random walk instead of
//! accumulating linearly; a Hoeffding bound over the at most `log(n/m)`
//! levels gives rank error `≤ εn` with high probability for
//! `m = O((1/ε)·√log(1/εδ))`.
//!
//! Three summaries are built on this block:
//!
//! * [`KnownNQuantile`] (§4.2) — when an upper bound on the total stream
//!   size is known in advance, a binary-counter hierarchy of buffers gives
//!   a fully mergeable summary of size `O((1/ε)·log(εn)·√log(1/ε))`;
//! * [`HybridQuantile`] (§4.3) — no advance knowledge: the hierarchy keeps
//!   only `O(log(1/ε))` levels, and when it would overflow, the base
//!   weight doubles (levels relabel downward) with a block sampler feeding
//!   weight-`w` representatives into level 0. Size
//!   `O((1/ε)·log^{1.5}(1/ε))`, **independent of n**;
//! * baselines: [`GkSummary`] (Greenwald-Khanna, the classic streaming
//!   summary, whose merges *accumulate* error — experiment E6 measures the
//!   degradation) and [`BottomKSample`] (mergeable uniform sampling, which
//!   needs `Θ(1/ε²)` samples for the same guarantee).
//!
//! All summaries answer [`RankSummary::rank`] and [`RankSummary::quantile`]
//! queries and are deterministic given their construction seeds.

pub mod buffer;
pub mod gk;
pub mod hierarchy;
pub mod hybrid;
pub mod known_n;
pub mod sampling;

pub use buffer::SortedBuffer;
pub use gk::GkSummary;
pub use hybrid::HybridQuantile;
pub use known_n::KnownNQuantile;
pub use sampling::BottomKSample;

/// Query interface shared by every quantile summary in this crate.
pub trait RankSummary<T: Ord> {
    /// Insert one value.
    fn insert(&mut self, value: T);

    /// Total number of values inserted (across merges).
    fn count(&self) -> u64;

    /// Estimated rank of `x`: the number of inserted values `< x`.
    fn rank(&self, x: &T) -> u64;

    /// Estimated φ-quantile, `φ ∈ [0, 1]`. `None` iff no data.
    fn quantile(&self, phi: f64) -> Option<T>;

    /// Estimated cumulative distribution at `x`: the fraction of inserted
    /// values strictly below `x`. 0 for an empty summary.
    fn cdf(&self, x: &T) -> f64 {
        if self.count() == 0 {
            0.0
        } else {
            self.rank(x) as f64 / self.count() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_default_impl() {
        let mut q = KnownNQuantile::new(0.1, 100, 0);
        assert_eq!(q.cdf(&5u64), 0.0);
        for v in 0..10u64 {
            q.insert(v);
        }
        assert_eq!(q.cdf(&0), 0.0);
        assert_eq!(q.cdf(&5), 0.5);
        assert_eq!(q.cdf(&10), 1.0);
    }
}

//! Bottom-k sampling — the mergeable random-sampling baseline.
//!
//! Tag every element with an independent uniform 64-bit key and keep the
//! `k` smallest tags. The kept elements are a uniform without-replacement
//! sample, and the scheme is *perfectly* mergeable: the bottom-k of a union
//! is the bottom-k of the two bottom-k sets. Rank estimates scale the
//! sample rank by `n/k`, so the rank error is `Θ(n/√k)` — matching the
//! `Θ(1/ε²)` sample-size cost the paper contrasts its `Õ(1/ε)` summary
//! against (experiment E6).

use ms_core::error::ensure_same_capacity;
use ms_core::wire::{Wire, WireError, WireReader};
use ms_core::{Mergeable, Result, Rng64, Summary};

use crate::RankSummary;

/// Mergeable uniform sample of fixed capacity.
#[derive(Debug, Clone)]
pub struct BottomKSample<T> {
    k: usize,
    /// `(tag, value)` pairs, kept sorted ascending by tag; at most `k`.
    entries: Vec<(u64, T)>,
    n: u64,
    rng: Rng64,
}

impl<T: Wire> Wire for BottomKSample<T> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.k.encode_into(out);
        self.entries.encode_into(out);
        self.n.encode_into(out);
        self.rng.encode_into(out);
    }

    fn decode_from(r: &mut WireReader<'_>) -> std::result::Result<Self, WireError> {
        let k = usize::decode_from(r)?;
        if k == 0 {
            return Err(WireError::Malformed("sample capacity must be positive"));
        }
        let entries = Vec::<(u64, T)>::decode_from(r)?;
        if entries.len() > k {
            return Err(WireError::Malformed("sample holds more than k entries"));
        }
        if entries.windows(2).any(|w| w[0].0 > w[1].0) {
            return Err(WireError::Malformed("sample tags not sorted"));
        }
        Ok(BottomKSample {
            k,
            entries,
            n: u64::decode_from(r)?,
            rng: Rng64::decode_from(r)?,
        })
    }
}

impl<T: Ord + Clone> BottomKSample<T> {
    /// Create a sampler keeping `k ≥ 1` elements.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize, seed: u64) -> Self {
        assert!(k >= 1, "sample capacity must be positive");
        BottomKSample {
            k,
            entries: Vec::with_capacity(k + 1),
            n: 0,
            rng: Rng64::new(seed),
        }
    }

    /// Sample capacity `k`.
    pub fn capacity(&self) -> usize {
        self.k
    }

    /// The sampled values (unordered).
    pub fn sample(&self) -> impl Iterator<Item = &T> {
        self.entries.iter().map(|(_, v)| v)
    }

    /// Insert a pre-tagged element, keeping the k smallest tags.
    fn insert_tagged(&mut self, tag: u64, value: T) {
        let pos = self.entries.partition_point(|&(t, _)| t < tag);
        if pos >= self.k {
            return;
        }
        self.entries.insert(pos, (tag, value));
        self.entries.truncate(self.k);
    }
}

impl<T: Ord + Clone> RankSummary<T> for BottomKSample<T> {
    fn insert(&mut self, value: T) {
        self.n += 1;
        let tag = self.rng.next_u64();
        self.insert_tagged(tag, value);
    }

    fn count(&self) -> u64 {
        self.n
    }

    fn rank(&self, x: &T) -> u64 {
        if self.entries.is_empty() {
            return 0;
        }
        let below = self.entries.iter().filter(|(_, v)| v < x).count() as u128;
        // Scale the sample rank to the population.
        (below * self.n as u128 / self.entries.len() as u128) as u64
    }

    fn quantile(&self, phi: f64) -> Option<T> {
        if self.entries.is_empty() {
            return None;
        }
        let mut values: Vec<&T> = self.entries.iter().map(|(_, v)| v).collect();
        values.sort();
        let phi = phi.clamp(0.0, 1.0);
        let idx = ((phi * values.len() as f64).ceil() as usize).clamp(1, values.len()) - 1;
        Some(values[idx].clone())
    }
}

impl<T: Ord + Clone> Summary for BottomKSample<T> {
    fn total_weight(&self) -> u64 {
        self.n
    }

    fn size(&self) -> usize {
        self.entries.len()
    }
}

impl<T: Ord + Clone> Mergeable for BottomKSample<T> {
    /// Bottom-k of the union of the two bottom-k sets — exactly the
    /// bottom-k sample of the combined population.
    fn merge(mut self, other: Self) -> Result<Self> {
        ensure_same_capacity("sample capacity (k)", self.k, other.k)?;
        self.n += other.n;
        self.rng.absorb(&other.rng);
        for (tag, value) in other.entries {
            self.insert_tagged(tag, value);
        }
        Ok(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ms_core::{merge_all, MergeTree, RankOracle};
    use ms_workloads::ValueDist;

    fn build(values: &[u64], k: usize, seed: u64) -> BottomKSample<u64> {
        let mut s = BottomKSample::new(k, seed);
        for &v in values {
            s.insert(v);
        }
        s
    }

    #[test]
    fn below_capacity_keeps_everything() {
        let s = build(&[5, 1, 9], 10, 0);
        assert_eq!(s.size(), 3);
        assert_eq!(s.count(), 3);
        // Rank scaling with full retention is exact.
        assert_eq!(s.rank(&9), 2);
        assert_eq!(s.quantile(0.0), Some(1));
    }

    #[test]
    fn capacity_is_enforced() {
        let s = build(&(0..10_000u64).collect::<Vec<_>>(), 64, 1);
        assert_eq!(s.size(), 64);
        assert_eq!(s.count(), 10_000);
    }

    #[test]
    fn sample_is_roughly_uniform() {
        // Median of the sampled values should sit near the population
        // median.
        let values = ValueDist::Uniform.generate(100_000, 3);
        let oracle = RankOracle::from_stream(values.clone());
        let s = build(&values, 1024, 4);
        let est = s.quantile(0.5).unwrap();
        let err = oracle.rank_error(&est, 50_000);
        assert!(
            (err as f64) < 0.1 * values.len() as f64,
            "median rank error {err}"
        );
    }

    #[test]
    fn merge_equals_bottom_k_of_union() {
        // Deterministic check: merge result must be the k smallest tags of
        // the union of the two entry lists.
        let a = build(&(0..500u64).collect::<Vec<_>>(), 32, 5);
        let b = build(&(500..1000u64).collect::<Vec<_>>(), 32, 6);
        let mut union: Vec<(u64, u64)> =
            a.entries.iter().chain(b.entries.iter()).cloned().collect();
        union.sort();
        union.truncate(32);
        let merged = a.clone().merge(b).unwrap();
        assert_eq!(merged.entries, union);
        assert_eq!(merged.count(), 1000);
    }

    #[test]
    fn merge_trees_preserve_uniformity() {
        let values = ValueDist::Uniform.generate(40_000, 7);
        let oracle = RankOracle::from_stream(values.clone());
        for shape in MergeTree::canonical() {
            let leaves: Vec<BottomKSample<u64>> = values
                .chunks(5_000)
                .enumerate()
                .map(|(i, c)| build(c, 512, 100 + i as u64))
                .collect();
            let merged = merge_all(leaves, shape).unwrap();
            assert_eq!(merged.size(), 512);
            let est = merged.quantile(0.5).unwrap();
            let err = oracle.rank_error(&est, 20_000);
            assert!(
                (err as f64) < 0.12 * values.len() as f64,
                "{}: median rank error {err}",
                shape.label()
            );
        }
    }

    #[test]
    fn larger_samples_give_smaller_error() {
        let values = ValueDist::Uniform.generate(60_000, 9);
        let oracle = RankOracle::from_stream(values.clone());
        let avg_err = |k: usize| -> f64 {
            (0..10)
                .map(|seed| {
                    let s = build(&values, k, seed);
                    let est = s.quantile(0.5).unwrap();
                    oracle.rank_error(&est, 30_000) as f64
                })
                .sum::<f64>()
                / 10.0
        };
        assert!(avg_err(4096) < avg_err(64));
    }

    #[test]
    fn merge_rejects_mismatched_capacity() {
        let a = BottomKSample::<u64>::new(8, 0);
        let b = BottomKSample::<u64>::new(16, 0);
        assert!(matches!(
            a.merge(b),
            Err(ms_core::MergeError::CapacityMismatch { .. })
        ));
    }

    #[test]
    fn empty_sampler() {
        let s = BottomKSample::<u64>::new(4, 0);
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.rank(&3), 0);
    }
}

//! The binary-counter buffer hierarchy shared by the known-n and hybrid
//! quantile summaries.
//!
//! Level `i` holds at most one [`SortedBuffer`] whose points each represent
//! `base_weight · 2^i` input values. Adding a buffer to an occupied level
//! triggers a same-weight merge whose result carries to level `i+1`,
//! exactly like incrementing a binary counter — which is also precisely
//! what happens when two summaries merge (their hierarchies add level-wise
//! with carries).

use ms_core::wire::{Wire, WireError, WireReader};
use ms_core::Rng64;

use crate::buffer::SortedBuffer;

/// A stack of at-most-one-buffer-per-level, carrying upward on collision.
#[derive(Debug, Clone)]
pub struct BufferHierarchy<T> {
    levels: Vec<Option<SortedBuffer<T>>>,
}

impl<T: Wire + Ord> Wire for BufferHierarchy<T> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.levels.encode_into(out);
    }

    fn decode_from(r: &mut WireReader<'_>) -> std::result::Result<Self, WireError> {
        Ok(BufferHierarchy {
            levels: Vec::<Option<SortedBuffer<T>>>::decode_from(r)?,
        })
    }
}

impl<T: Ord + Clone> BufferHierarchy<T> {
    /// Empty hierarchy.
    pub fn new() -> Self {
        BufferHierarchy { levels: Vec::new() }
    }

    /// Number of levels currently allocated (index of highest occupied
    /// level + 1; 0 if empty).
    pub fn num_levels(&self) -> usize {
        self.levels
            .iter()
            .rposition(|l| l.is_some())
            .map_or(0, |i| i + 1)
    }

    /// Total stored points across all levels.
    pub fn stored_points(&self) -> usize {
        self.levels.iter().flatten().map(SortedBuffer::len).sum()
    }

    /// Insert `buffer` at `level`, performing carries while the target
    /// level is occupied. Empty buffers are dropped.
    pub fn push_buffer(&mut self, mut level: usize, mut buffer: SortedBuffer<T>, rng: &mut Rng64) {
        loop {
            if buffer.is_empty() {
                return;
            }
            if self.levels.len() <= level {
                self.levels.resize_with(level + 1, || None);
            }
            match self.levels[level].take() {
                None => {
                    self.levels[level] = Some(buffer);
                    return;
                }
                Some(existing) => {
                    buffer = SortedBuffer::same_weight_merge(existing, buffer, rng);
                    level += 1;
                }
            }
        }
    }

    /// Merge another hierarchy into this one, level-wise with carries.
    pub fn absorb(&mut self, other: BufferHierarchy<T>, rng: &mut Rng64) {
        for (level, slot) in other.levels.into_iter().enumerate() {
            if let Some(buffer) = slot {
                self.push_buffer(level, buffer, rng);
            }
        }
    }

    /// Weighted count of stored points strictly below `x`, with level-0
    /// points worth `base_weight` each.
    pub fn weighted_count_below(&self, x: &T, base_weight: u64) -> u64 {
        self.levels
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| {
                slot.as_ref()
                    .map(|b| (base_weight << i) * b.count_below(x) as u64)
            })
            .sum()
    }

    /// Total weight represented by stored points.
    pub fn total_weight(&self, base_weight: u64) -> u64 {
        self.levels
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.as_ref().map(|b| (base_weight << i) * b.len() as u64))
            .sum()
    }

    /// Append every stored point with its weight to `out`.
    pub fn collect_weighted(&self, base_weight: u64, out: &mut Vec<(T, u64)>) {
        for (i, slot) in self.levels.iter().enumerate() {
            if let Some(b) = slot {
                let w = base_weight << i;
                out.extend(b.points().iter().map(|p| (p.clone(), w)));
            }
        }
    }

    /// Drop level 0 and shift every other level down by one, returning the
    /// removed level-0 buffer (if any). Used by the hybrid summary when it
    /// doubles its base weight: old level `i+1` *is* new level `i` under
    /// the doubled base.
    pub fn shift_down(&mut self) -> Option<SortedBuffer<T>> {
        if self.levels.is_empty() {
            return None;
        }
        self.levels.remove(0)
    }
}

impl<T: Ord + Clone> Default for BufferHierarchy<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf(points: Vec<u64>) -> SortedBuffer<u64> {
        SortedBuffer::from_unsorted(points)
    }

    #[test]
    fn push_into_empty_level() {
        let mut h = BufferHierarchy::new();
        let mut rng = Rng64::new(1);
        h.push_buffer(0, buf(vec![1, 2]), &mut rng);
        assert_eq!(h.num_levels(), 1);
        assert_eq!(h.stored_points(), 2);
    }

    #[test]
    fn collision_carries_upward() {
        let mut h = BufferHierarchy::new();
        let mut rng = Rng64::new(2);
        h.push_buffer(0, buf(vec![1, 3]), &mut rng);
        h.push_buffer(0, buf(vec![2, 4]), &mut rng);
        // Two level-0 buffers of 2 points merge into one level-1 buffer of
        // 2 points.
        assert_eq!(h.num_levels(), 2);
        assert_eq!(h.stored_points(), 2);
    }

    #[test]
    fn binary_counter_behavior() {
        let mut h = BufferHierarchy::new();
        let mut rng = Rng64::new(3);
        for i in 0..8u64 {
            h.push_buffer(0, buf(vec![i * 10, i * 10 + 5]), &mut rng);
        }
        // 8 pushes = binary 1000: single buffer at level 3.
        assert_eq!(h.num_levels(), 4);
        assert_eq!(h.stored_points(), 2);
    }

    #[test]
    fn weight_is_preserved_through_carries() {
        let mut h = BufferHierarchy::new();
        let mut rng = Rng64::new(4);
        for i in 0..5u64 {
            h.push_buffer(0, buf(vec![i, 100 + i, 200 + i, 300 + i]), &mut rng);
        }
        // 5 buffers × 4 points × weight 1 = 20 total weight, regardless of
        // how carries distributed them.
        assert_eq!(h.total_weight(1), 20);
        assert_eq!(h.total_weight(3), 60);
    }

    #[test]
    fn weighted_count_below_tracks_truth() {
        let mut h = BufferHierarchy::new();
        let mut rng = Rng64::new(5);
        // 4 buffers of the values 0..16 → after carries, count below 8
        // must be within one top-level weight of 8.
        h.push_buffer(0, buf(vec![0, 1, 2, 3]), &mut rng);
        h.push_buffer(0, buf(vec![4, 5, 6, 7]), &mut rng);
        h.push_buffer(0, buf(vec![8, 9, 10, 11]), &mut rng);
        h.push_buffer(0, buf(vec![12, 13, 14, 15]), &mut rng);
        let est = h.weighted_count_below(&8, 1);
        assert!(est.abs_diff(8) <= 4, "estimate {est}");
    }

    #[test]
    fn absorb_merges_level_wise() {
        let mut rng = Rng64::new(6);
        let mut a = BufferHierarchy::new();
        let mut b = BufferHierarchy::new();
        a.push_buffer(0, buf(vec![1, 2]), &mut rng);
        a.push_buffer(2, buf(vec![3, 4]), &mut rng);
        b.push_buffer(0, buf(vec![5, 6]), &mut rng);
        b.push_buffer(1, buf(vec![7, 8]), &mut rng);
        a.absorb(b, &mut rng);
        // level0: collision → carry to 1; collision with b's level1 → carry
        // to 2; collision → carry to 3.
        assert_eq!(a.num_levels(), 4);
        // All point counts stayed even, so weight is conserved exactly:
        // (2 + 8) from a plus (2 + 4) from b.
        assert_eq!(a.total_weight(1), 16);
    }

    #[test]
    fn absorb_conserves_weight() {
        let mut rng = Rng64::new(7);
        let mut a = BufferHierarchy::new();
        let mut b = BufferHierarchy::new();
        for i in 0..3u64 {
            a.push_buffer(0, buf(vec![i, i + 1]), &mut rng);
            b.push_buffer(0, buf(vec![i + 10, i + 11]), &mut rng);
        }
        let wa = a.total_weight(1);
        let wb = b.total_weight(1);
        a.absorb(b, &mut rng);
        assert_eq!(a.total_weight(1), wa + wb);
    }

    #[test]
    fn shift_down_relabels_levels() {
        let mut h = BufferHierarchy::new();
        let mut rng = Rng64::new(8);
        h.push_buffer(0, buf(vec![1]), &mut rng);
        h.push_buffer(1, buf(vec![2, 3]), &mut rng);
        let removed = h.shift_down().expect("level 0 occupied");
        assert_eq!(removed.points(), &[1]);
        assert_eq!(h.num_levels(), 1);
        // Old level-1 weight (2/point at base 1) is now level-0 weight
        // under base 2: total weight conserved.
        assert_eq!(h.total_weight(2), 4);
    }

    #[test]
    fn collect_weighted_lists_everything() {
        let mut h = BufferHierarchy::new();
        let mut rng = Rng64::new(9);
        h.push_buffer(0, buf(vec![5]), &mut rng);
        h.push_buffer(1, buf(vec![7]), &mut rng);
        let mut out = Vec::new();
        h.collect_weighted(10, &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![(5, 10), (7, 20)]);
    }

    #[test]
    fn empty_hierarchy_queries() {
        let h = BufferHierarchy::<u64>::new();
        assert_eq!(h.num_levels(), 0);
        assert_eq!(h.weighted_count_below(&5, 1), 0);
        assert_eq!(h.total_weight(1), 0);
    }
}

//! The known-n mergeable quantile summary (§4.2).
//!
//! When an upper bound `n_max` on the total data size is known when the
//! summaries are created, the construction is the plain buffer hierarchy:
//! raw values fill a base buffer of size `m`; full base buffers enter the
//! hierarchy at level 0 (weight 1 per point) and carry upward via
//! randomized same-weight merges. Merging two summaries concatenates the
//! base buffers and adds the hierarchies level-wise.
//!
//! With `m = Θ((1/ε)·√log(1/δ))` and the `log(ε·n_max)` levels the
//! hierarchy can reach, every rank estimate is within `εn` of the truth
//! with probability `1 − δ` — under *arbitrary* merge trees, because each
//! same-weight merge contributes an independent, zero-mean error bounded
//! by its level weight, and Hoeffding's inequality controls the sum.

use ms_core::error::ensure_same_capacity;
use ms_core::wire::{Wire, WireError, WireReader};
use ms_core::{MergeError, Mergeable, Result, Rng64, Summary};

use crate::buffer::SortedBuffer;
use crate::hierarchy::BufferHierarchy;
use crate::RankSummary;

/// Internal failure probability target used to size buffers.
const DELTA: f64 = 0.01;

/// Mergeable quantile summary for streams of known maximum total size.
#[derive(Debug, Clone)]
pub struct KnownNQuantile<T> {
    epsilon: f64,
    m: usize,
    base: Vec<T>,
    hierarchy: BufferHierarchy<T>,
    n: u64,
    rng: Rng64,
}

impl<T: Wire + Ord> Wire for KnownNQuantile<T> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.epsilon.encode_into(out);
        self.m.encode_into(out);
        self.base.encode_into(out);
        self.hierarchy.encode_into(out);
        self.n.encode_into(out);
        self.rng.encode_into(out);
    }

    fn decode_from(r: &mut WireReader<'_>) -> std::result::Result<Self, WireError> {
        let epsilon = f64::decode_from(r)?;
        if !(epsilon > 0.0 && epsilon < 1.0) {
            return Err(WireError::Malformed("epsilon out of (0, 1)"));
        }
        Ok(KnownNQuantile {
            epsilon,
            m: usize::decode_from(r)?,
            base: Vec::<T>::decode_from(r)?,
            hierarchy: BufferHierarchy::<T>::decode_from(r)?,
            n: u64::decode_from(r)?,
            rng: Rng64::decode_from(r)?,
        })
    }
}

/// Buffer size for a target ε and advertised maximum stream size: the
/// paper's known-n sizing `m = Θ((1/ε)·√(log(ε·n_max) + log(1/δ)))` — the
/// hierarchy reaches ~log₂(ε·n_max) levels and each level's merge coins
/// contribute independent noise, so the buffer pays a √log factor. The
/// constant keeps the p99 observed error comfortably under εn in the
/// experiments (E4).
fn buffer_size(epsilon: f64, n_max: u64) -> usize {
    let levels = (epsilon * n_max as f64).max(2.0).log2();
    let m = (1.5 / epsilon) * (levels + (2.0 / DELTA).ln()).sqrt();
    (m.ceil() as usize).max(8)
}

impl<T: Ord + Clone> KnownNQuantile<T> {
    /// Create a summary with rank-error target `ε·n` (w.h.p.) for streams
    /// of up to roughly `n_max` total values, seeded for reproducible
    /// merge coins. `n_max` sizes the buffers (more data → more hierarchy
    /// levels → a √log-factor larger buffer); exceeding it degrades the
    /// guarantee gracefully rather than failing. Merging requires equal
    /// buffer sizes, so all sites must agree on `(ε, n_max)` up-front —
    /// that is what "known n" means in §4.2.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is not in `(0, 1)`.
    pub fn new(epsilon: f64, n_max: u64, seed: u64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon < 1.0,
            "epsilon must be in (0, 1), got {epsilon}"
        );
        KnownNQuantile {
            epsilon,
            m: buffer_size(epsilon, n_max),
            base: Vec::new(),
            hierarchy: BufferHierarchy::new(),
            n: 0,
            rng: Rng64::new(seed),
        }
    }

    /// The error parameter ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Buffer size `m` (points per buffer).
    pub fn buffer_capacity(&self) -> usize {
        self.m
    }

    /// All stored points with their weights (base points have weight 1).
    fn weighted_points(&self) -> Vec<(T, u64)> {
        let mut out: Vec<(T, u64)> = self.base.iter().map(|v| (v.clone(), 1)).collect();
        self.hierarchy.collect_weighted(1, &mut out);
        out
    }

    fn flush_base_if_full(&mut self) {
        if self.base.len() >= self.m {
            let buffer = SortedBuffer::from_unsorted(std::mem::take(&mut self.base));
            self.hierarchy.push_buffer(0, buffer, &mut self.rng);
        }
    }
}

impl<T: Ord + Clone> RankSummary<T> for KnownNQuantile<T> {
    fn insert(&mut self, value: T) {
        self.n += 1;
        self.base.push(value);
        self.flush_base_if_full();
    }

    fn count(&self) -> u64 {
        self.n
    }

    fn rank(&self, x: &T) -> u64 {
        let base_count = self.base.iter().filter(|v| *v < x).count() as u64;
        base_count + self.hierarchy.weighted_count_below(x, 1)
    }

    fn quantile(&self, phi: f64) -> Option<T> {
        weighted_quantile(self.weighted_points(), phi)
    }
}

impl<T: Ord + Clone> Summary for KnownNQuantile<T> {
    fn total_weight(&self) -> u64 {
        self.n
    }

    fn size(&self) -> usize {
        self.base.len() + self.hierarchy.stored_points()
    }
}

impl<T: Ord + Clone> Mergeable for KnownNQuantile<T> {
    fn merge(mut self, other: Self) -> Result<Self> {
        if (self.epsilon - other.epsilon).abs() > f64::EPSILON {
            return Err(MergeError::EpsilonMismatch {
                left: self.epsilon,
                right: other.epsilon,
            });
        }
        ensure_same_capacity("buffer size (m)", self.m, other.m)?;
        self.n += other.n;
        self.rng.absorb(&other.rng);
        self.hierarchy.absorb(other.hierarchy, &mut self.rng);
        for value in other.base {
            self.base.push(value);
            self.flush_base_if_full();
        }
        Ok(self)
    }
}

/// Select the value whose cumulative weight first reaches `φ` of the total
/// stored weight. Shared by the quantile summaries in this crate.
pub(crate) fn weighted_quantile<T: Ord + Clone>(mut points: Vec<(T, u64)>, phi: f64) -> Option<T> {
    if points.is_empty() {
        return None;
    }
    let phi = phi.clamp(0.0, 1.0);
    points.sort_by(|a, b| a.0.cmp(&b.0));
    let total: u64 = points.iter().map(|&(_, w)| w).sum();
    let target = ((phi * total as f64).ceil() as u64).clamp(1, total);
    let mut cumulative = 0u64;
    for (value, w) in &points {
        cumulative += w;
        if cumulative >= target {
            return Some(value.clone());
        }
    }
    points.pop().map(|(v, _)| v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ms_core::{merge_all, MergeTree, RankOracle};
    use ms_workloads::ValueDist;

    fn build(values: &[u64], eps: f64, seed: u64) -> KnownNQuantile<u64> {
        let mut q = KnownNQuantile::new(eps, values.len() as u64, seed);
        for &v in values {
            q.insert(v);
        }
        q
    }

    /// Max rank error over a probe grid, in units of n.
    fn max_rank_error(q: &KnownNQuantile<u64>, oracle: &RankOracle<u64>) -> f64 {
        let n = oracle.len() as f64;
        let probes: Vec<u64> = (0..=100)
            .filter_map(|i| oracle.quantile(i as f64 / 100.0).copied())
            .collect();
        probes
            .iter()
            .map(|x| oracle.rank_error(x, q.rank(x)) as f64 / n)
            .fold(0.0, f64::max)
    }

    #[test]
    fn exact_while_data_fits_in_base() {
        let q = build(&[5, 1, 9, 3], 0.1, 0);
        assert_eq!(q.count(), 4);
        assert_eq!(q.rank(&5), 2);
        assert_eq!(q.quantile(0.0), Some(1));
        assert_eq!(q.quantile(1.0), Some(9));
        assert_eq!(q.quantile(0.5), Some(3));
    }

    #[test]
    fn empty_summary() {
        let q = KnownNQuantile::<u64>::new(0.1, 100, 0);
        assert_eq!(q.quantile(0.5), None);
        assert_eq!(q.rank(&7), 0);
        assert!(q.is_empty());
    }

    #[test]
    fn rank_error_within_epsilon_on_streams() {
        let eps = 0.05;
        for dist in ValueDist::canonical() {
            let values = dist.generate(20_000, 11);
            let oracle = RankOracle::from_stream(values.clone());
            let q = build(&values, eps, 42);
            let err = max_rank_error(&q, &oracle);
            assert!(err <= eps, "{}: max rank error {err} > {eps}", dist.label());
        }
    }

    #[test]
    fn rank_error_within_epsilon_under_merge_trees() {
        let eps = 0.05;
        let values = ValueDist::Uniform.generate(32_768, 5);
        let oracle = RankOracle::from_stream(values.clone());
        for shape in MergeTree::canonical() {
            let leaves: Vec<KnownNQuantile<u64>> = values
                .chunks(2048)
                .enumerate()
                .map(|(i, chunk)| build(chunk, eps, 100 + i as u64))
                .collect();
            let merged = merge_all(leaves, shape).unwrap();
            assert_eq!(merged.count(), values.len() as u64);
            let err = max_rank_error(&merged, &oracle);
            assert!(
                err <= eps,
                "{}: max rank error {err} > {eps}",
                shape.label()
            );
        }
    }

    #[test]
    fn quantile_answers_are_near_true_quantiles() {
        let eps = 0.02;
        let values = ValueDist::Normal.generate(50_000, 9);
        let oracle = RankOracle::from_stream(values.clone());
        let q = build(&values, eps, 3);
        for phi in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let est = q.quantile(phi).expect("non-empty");
            // The estimate's true rank must be within εn of φn.
            let err = oracle.rank_error(&est, (phi * values.len() as f64) as u64);
            assert!(
                (err as f64) <= eps * values.len() as f64 + 1.0,
                "phi {phi}: rank error {err}"
            );
        }
    }

    #[test]
    fn size_grows_logarithmically() {
        let eps = 0.05;
        let small = build(&ValueDist::Uniform.generate(4_096, 1), eps, 1);
        let large = build(&ValueDist::Uniform.generate(262_144, 1), eps, 1);
        // 64× the data must cost far less than 64× the space — one buffer
        // per doubling.
        assert!(
            large.size() < small.size().max(1) * 12,
            "small {}, large {}",
            small.size(),
            large.size()
        );
    }

    #[test]
    fn merge_rejects_mismatched_epsilon() {
        let a = KnownNQuantile::<u64>::new(0.1, 100, 0);
        let b = KnownNQuantile::<u64>::new(0.05, 100, 0);
        assert!(matches!(
            a.merge(b),
            Err(MergeError::EpsilonMismatch { .. })
        ));
    }

    #[test]
    fn merge_is_deterministic_given_seeds() {
        let values = ValueDist::Uniform.generate(10_000, 2);
        let run = || {
            let a = build(&values[..5_000], 0.05, 7);
            let b = build(&values[5_000..], 0.05, 8);
            let m = a.merge(b).unwrap();
            (0..20).map(|i| m.rank(&(i << 48))).collect::<Vec<u64>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn buffer_size_scales_with_n_max() {
        let small = KnownNQuantile::<u64>::new(0.05, 1 << 10, 0).buffer_capacity();
        let large = KnownNQuantile::<u64>::new(0.05, 1 << 30, 0).buffer_capacity();
        assert!(large > small, "√log(εn) factor: {small} vs {large}");
        // But only by the √log factor, not linearly.
        assert!(large < 3 * small, "{small} vs {large}");
    }

    #[test]
    fn weighted_quantile_selection() {
        let pts = vec![(10u64, 1u64), (20, 2), (30, 1)];
        assert_eq!(weighted_quantile(pts.clone(), 0.0), Some(10));
        assert_eq!(weighted_quantile(pts.clone(), 0.25), Some(10));
        assert_eq!(weighted_quantile(pts.clone(), 0.5), Some(20));
        assert_eq!(weighted_quantile(pts.clone(), 0.75), Some(20));
        assert_eq!(weighted_quantile(pts, 1.0), Some(30));
        assert_eq!(weighted_quantile(Vec::<(u64, u64)>::new(), 0.5), None);
    }
}

//! Property tests for the quantile summaries: structural invariants that
//! must hold for every input, independent of the probabilistic error
//! analysis.

use proptest::collection::vec;
use proptest::prelude::*;

use ms_core::{Mergeable, Rng64, Summary};
use ms_quantiles::{
    BottomKSample, GkSummary, HybridQuantile, KnownNQuantile, RankSummary, SortedBuffer,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The same-weight merge keeps exactly half the points (to parity),
    /// sorted, and every kept point comes from the inputs.
    #[test]
    fn same_weight_merge_structure(
        a in vec(0u64..1000, 0..64),
        b in vec(0u64..1000, 0..64),
        seed in any::<u64>(),
    ) {
        let total = a.len() + b.len();
        let ba = SortedBuffer::from_unsorted(a.clone());
        let bb = SortedBuffer::from_unsorted(b.clone());
        let mut rng = Rng64::new(seed);
        let merged = SortedBuffer::same_weight_merge(ba, bb, &mut rng);
        prop_assert!(merged.len() == total / 2 || merged.len() == total.div_ceil(2));
        prop_assert!(merged.points().windows(2).all(|w| w[0] <= w[1]));
        let mut pool: Vec<u64> = a;
        pool.extend(b);
        for p in merged.points() {
            let pos = pool.iter().position(|x| x == p);
            prop_assert!(pos.is_some(), "merge invented point {p}");
            pool.swap_remove(pos.unwrap());
        }
    }

    /// Rank estimates are bounded by n for all four summaries, and
    /// monotone in the query for the point-set summaries. (GK's midpoint
    /// estimator is *not* monotone in general — its uncertainty band can
    /// narrow across tuples — so it is only checked for the bound.)
    #[test]
    fn ranks_are_monotone_and_bounded(values in vec(0u64..10_000, 1..800)) {
        let n = values.len() as u64;
        let mut known = KnownNQuantile::new(0.1, n, 1);
        let mut hybrid = HybridQuantile::new(0.1, 1);
        let mut gk = GkSummary::new(0.1);
        let mut sample = BottomKSample::new(64, 1);
        for &v in &values {
            known.insert(v);
            hybrid.insert(v);
            gk.insert(v);
            sample.insert(v);
        }
        let probes = [0u64, 100, 1_000, 5_000, 9_999, 10_000];
        let mut prev = [0u64; 3];
        for x in probes {
            let monotone = [known.rank(&x), hybrid.rank(&x), sample.rank(&x)];
            for (i, &r) in monotone.iter().enumerate() {
                prop_assert!(r <= n, "summary {i}: rank {r} > n {n}");
                prop_assert!(r >= prev[i], "summary {i}: rank not monotone");
            }
            prev = monotone;
            prop_assert!(gk.rank(&x) <= n);
        }
    }

    /// Quantile answers are always actual inserted values and move
    /// monotonically with φ.
    #[test]
    fn quantiles_are_data_values(values in vec(0u64..10_000, 1..500), seed in any::<u64>()) {
        let mut hybrid = HybridQuantile::new(0.1, seed);
        for &v in &values {
            hybrid.insert(v);
        }
        let mut prev = None;
        for phi in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let q = hybrid.quantile(phi).expect("non-empty");
            prop_assert!(values.contains(&q), "quantile {q} not in the data");
            if let Some(p) = prev {
                prop_assert!(q >= p, "quantiles not monotone in phi");
            }
            prev = Some(q);
        }
    }

    /// Merging preserves counts exactly, for every split of the stream and
    /// both randomized summaries.
    #[test]
    fn merge_preserves_count(
        values in vec(0u64..1000, 0..600),
        cut_ppm in 0u32..1_000_000,
    ) {
        let cut = (values.len() as u64 * cut_ppm as u64 / 1_000_000) as usize;
        let mk_known = |slice: &[u64], seed| {
            let mut q = KnownNQuantile::new(0.1, 1_000, seed);
            for &v in slice {
                q.insert(v);
            }
            q
        };
        let merged = mk_known(&values[..cut], 1).merge(mk_known(&values[cut..], 2)).unwrap();
        prop_assert_eq!(merged.count(), values.len() as u64);
        prop_assert_eq!(merged.total_weight(), values.len() as u64);

        let mk_hybrid = |slice: &[u64], seed| {
            let mut q = HybridQuantile::new(0.1, seed);
            for &v in slice {
                q.insert(v);
            }
            q
        };
        let merged = mk_hybrid(&values[..cut], 3).merge(mk_hybrid(&values[cut..], 4)).unwrap();
        prop_assert_eq!(merged.count(), values.len() as u64);
    }

    /// The hybrid summary's size respects its own cap for any stream.
    #[test]
    fn hybrid_size_cap(values in vec(any::<u64>(), 0..2_000), seed in any::<u64>()) {
        let mut q = HybridQuantile::new(0.1, seed);
        for &v in &values {
            q.insert(v);
        }
        let cap = q.buffer_capacity() * (q.max_levels() + 1) + 1;
        prop_assert!(q.size() <= cap, "size {} over cap {cap}", q.size());
    }

    /// GK never stores more tuples than inserted values and stays within a
    /// polylog multiple of 1/ε on sorted adversarial input.
    #[test]
    fn gk_size_control(n in 1usize..3_000) {
        let mut gk = GkSummary::new(0.05);
        for v in 0..n as u64 {
            gk.insert(v);
        }
        prop_assert!(gk.size() <= n);
        prop_assert!(gk.size() <= 400, "gk stored {} tuples", gk.size());
    }
}

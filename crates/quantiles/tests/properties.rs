//! Property tests for the quantile summaries: structural invariants that
//! must hold for every input, independent of the probabilistic error
//! analysis. Randomized over seeded streams so failures reproduce.

use ms_core::{Mergeable, Rng64, Summary};
use ms_quantiles::{
    BottomKSample, GkSummary, HybridQuantile, KnownNQuantile, RankSummary, SortedBuffer,
};

const CASES: u64 = 96;

fn values(rng: &mut Rng64, universe: u64, max_len: usize, min_len: usize) -> Vec<u64> {
    let len = min_len + rng.below_usize(max_len - min_len);
    (0..len).map(|_| rng.below(universe)).collect()
}

/// The same-weight merge keeps exactly half the points (to parity),
/// sorted, and every kept point comes from the inputs.
#[test]
fn same_weight_merge_structure() {
    let mut outer = Rng64::new(0x0A_01);
    for _ in 0..CASES {
        let a = values(&mut outer, 1000, 64, 0);
        let b = values(&mut outer, 1000, 64, 0);
        let seed = outer.next_u64();
        let total = a.len() + b.len();
        let ba = SortedBuffer::from_unsorted(a.clone());
        let bb = SortedBuffer::from_unsorted(b.clone());
        let mut rng = Rng64::new(seed);
        let merged = SortedBuffer::same_weight_merge(ba, bb, &mut rng);
        assert!(merged.len() == total / 2 || merged.len() == total.div_ceil(2));
        assert!(merged.points().windows(2).all(|w| w[0] <= w[1]));
        let mut pool: Vec<u64> = a;
        pool.extend(b);
        for p in merged.points() {
            let pos = pool.iter().position(|x| x == p);
            assert!(pos.is_some(), "merge invented point {p}");
            pool.swap_remove(pos.unwrap());
        }
    }
}

/// Rank estimates are bounded by n for all four summaries, and monotone
/// in the query for the point-set summaries. (GK's midpoint estimator is
/// *not* monotone in general — its uncertainty band can narrow across
/// tuples — so it is only checked for the bound.)
#[test]
fn ranks_are_monotone_and_bounded() {
    let mut outer = Rng64::new(0x0A_02);
    for _ in 0..CASES {
        let vals = values(&mut outer, 10_000, 800, 1);
        let n = vals.len() as u64;
        let mut known = KnownNQuantile::new(0.1, n, 1);
        let mut hybrid = HybridQuantile::new(0.1, 1);
        let mut gk = GkSummary::new(0.1);
        let mut sample = BottomKSample::new(64, 1);
        for &v in &vals {
            known.insert(v);
            hybrid.insert(v);
            gk.insert(v);
            sample.insert(v);
        }
        let probes = [0u64, 100, 1_000, 5_000, 9_999, 10_000];
        let mut prev = [0u64; 3];
        for x in probes {
            let monotone = [known.rank(&x), hybrid.rank(&x), sample.rank(&x)];
            for (i, &r) in monotone.iter().enumerate() {
                assert!(r <= n, "summary {i}: rank {r} > n {n}");
                assert!(r >= prev[i], "summary {i}: rank not monotone");
            }
            prev = monotone;
            assert!(gk.rank(&x) <= n);
        }
    }
}

/// Quantile answers are always actual inserted values and move
/// monotonically with φ.
#[test]
fn quantiles_are_data_values() {
    let mut outer = Rng64::new(0x0A_03);
    for _ in 0..CASES {
        let vals = values(&mut outer, 10_000, 500, 1);
        let seed = outer.next_u64();
        let mut hybrid = HybridQuantile::new(0.1, seed);
        for &v in &vals {
            hybrid.insert(v);
        }
        let mut prev = None;
        for phi in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let q = hybrid.quantile(phi).expect("non-empty");
            assert!(vals.contains(&q), "quantile {q} not in the data");
            if let Some(p) = prev {
                assert!(q >= p, "quantiles not monotone in phi");
            }
            prev = Some(q);
        }
    }
}

/// Merging preserves counts exactly, for every split of the stream and
/// both randomized summaries.
#[test]
fn merge_preserves_count() {
    let mut outer = Rng64::new(0x0A_04);
    for _ in 0..CASES {
        let vals = values(&mut outer, 1000, 600, 0);
        let cut_ppm = outer.below(1_000_000);
        let cut = (vals.len() as u64 * cut_ppm / 1_000_000) as usize;
        let mk_known = |slice: &[u64], seed| {
            let mut q = KnownNQuantile::new(0.1, 1_000, seed);
            for &v in slice {
                q.insert(v);
            }
            q
        };
        let merged = mk_known(&vals[..cut], 1)
            .merge(mk_known(&vals[cut..], 2))
            .unwrap();
        assert_eq!(merged.count(), vals.len() as u64);
        assert_eq!(merged.total_weight(), vals.len() as u64);

        let mk_hybrid = |slice: &[u64], seed| {
            let mut q = HybridQuantile::new(0.1, seed);
            for &v in slice {
                q.insert(v);
            }
            q
        };
        let merged = mk_hybrid(&vals[..cut], 3)
            .merge(mk_hybrid(&vals[cut..], 4))
            .unwrap();
        assert_eq!(merged.count(), vals.len() as u64);
    }
}

/// The hybrid summary's size respects its own cap for any stream.
#[test]
fn hybrid_size_cap() {
    let mut outer = Rng64::new(0x0A_05);
    for _ in 0..CASES {
        let len = outer.below_usize(2_000);
        let seed = outer.next_u64();
        let mut q = HybridQuantile::new(0.1, seed);
        for _ in 0..len {
            q.insert(outer.next_u64());
        }
        let cap = q.buffer_capacity() * (q.max_levels() + 1) + 1;
        assert!(q.size() <= cap, "size {} over cap {cap}", q.size());
    }
}

/// GK never stores more tuples than inserted values and stays within a
/// polylog multiple of 1/ε on sorted adversarial input.
#[test]
fn gk_size_control() {
    let mut outer = Rng64::new(0x0A_06);
    for _ in 0..CASES {
        let n = 1 + outer.below_usize(2_999);
        let mut gk = GkSummary::new(0.05);
        for v in 0..n as u64 {
            gk.insert(v);
        }
        assert!(gk.size() <= n);
        assert!(gk.size() <= 400, "gk stored {} tuples", gk.size());
    }
}

//! The mergeability contract.
//!
//! A summarization scheme `S(·, ε)` is *mergeable* (PODS'12, Definition 1)
//! if there is an algorithm producing `S(D₁ ⊎ D₂, ε)` from `S(D₁, ε)` and
//! `S(D₂, ε)` — keeping both the error parameter and the size bound — such
//! that the guarantee survives *arbitrary* sequences of merges. These traits
//! encode that contract; the drivers in [`crate::tree`] exercise it over
//! every tree shape.

use crate::error::Result;

/// Common observable state of any summary.
pub trait Summary {
    /// Total weight `n = |D|` of the summarized multiset. Every summary in
    /// the paper tracks this exactly (it is a single counter and merging
    /// adds it), and several algorithms need it (isomorphism, hybrid
    /// quantiles).
    fn total_weight(&self) -> u64;

    /// Number of stored entries — the space proxy used in the paper's size
    /// bounds (counters, stored points, sketch cells).
    fn size(&self) -> usize;

    /// True if the summary has absorbed no data.
    fn is_empty(&self) -> bool {
        self.total_weight() == 0
    }
}

/// A summary that can be built by streaming items one at a time.
///
/// Weighted updates are first-class: the heavy-hitter analysis of the paper
/// carries through with integer weights, and merging internally reduces to
/// weighted re-insertion in several places.
pub trait ItemSummary<I>: Summary {
    /// Insert one occurrence of `item`.
    fn update(&mut self, item: I) {
        self.update_weighted(item, 1);
    }

    /// Insert `weight` occurrences of `item`. A zero weight is a no-op.
    fn update_weighted(&mut self, item: I, weight: u64);

    /// Insert every item of an iterator.
    fn extend_from<T: IntoIterator<Item = I>>(&mut self, items: T) {
        for item in items {
            self.update(item);
        }
    }
}

/// The merge operation itself.
///
/// Merging consumes both inputs: summaries are value types, and a merge that
/// could partially mutate a summary and then fail would leave an undefined
/// guarantee behind. Incompatible inputs (different ε, capacity, hash family
/// or reference frame) produce a typed [`crate::MergeError`].
pub trait Mergeable: Sized {
    /// Merge two summaries of disjoint (or arbitrary) datasets into a
    /// summary of their multiset union.
    fn merge(self, other: Self) -> Result<Self>;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal exact summary used to exercise the trait contracts.
    #[derive(Debug, Clone, Default, PartialEq)]
    struct ExactSum {
        n: u64,
        total: u64,
    }

    impl Summary for ExactSum {
        fn total_weight(&self) -> u64 {
            self.n
        }
        fn size(&self) -> usize {
            2
        }
    }

    impl ItemSummary<u64> for ExactSum {
        fn update_weighted(&mut self, item: u64, weight: u64) {
            self.n += weight;
            self.total += item * weight;
        }
    }

    impl Mergeable for ExactSum {
        fn merge(self, other: Self) -> Result<Self> {
            Ok(ExactSum {
                n: self.n + other.n,
                total: self.total + other.total,
            })
        }
    }

    #[test]
    fn default_update_is_weight_one() {
        let mut s = ExactSum::default();
        s.update(10);
        assert_eq!(s.total_weight(), 1);
        assert_eq!(s.total, 10);
    }

    #[test]
    fn extend_from_iterator() {
        let mut s = ExactSum::default();
        s.extend_from(1..=4u64);
        assert_eq!(s.total_weight(), 4);
        assert_eq!(s.total, 10);
    }

    #[test]
    fn is_empty_tracks_weight() {
        let mut s = ExactSum::default();
        assert!(s.is_empty());
        s.update_weighted(3, 0);
        assert!(s.is_empty(), "zero-weight update must be a no-op");
        s.update(3);
        assert!(!s.is_empty());
    }

    #[test]
    fn merge_adds_weights() {
        let mut a = ExactSum::default();
        let mut b = ExactSum::default();
        a.extend_from([1, 2, 3]);
        b.extend_from([4, 5]);
        let m = a.merge(b).unwrap();
        assert_eq!(m.total_weight(), 5);
        assert_eq!(m.total, 15);
    }
}

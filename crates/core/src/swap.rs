//! A generation-stamped, read-lock-free publication cell.
//!
//! [`SwapCell`] holds one immutable value and lets any number of readers
//! borrow it with a single `Acquire` load — no reference counting, no
//! lock, no contended cache line. Writers replace the value wholesale
//! with [`SwapCell::swap`], which is serialized by a mutex; the cell is
//! built for data that changes rarely but is read on every operation
//! (the service's shard table: read per ingest batch, written only when a
//! shard dies, respawns, or drains).
//!
//! # Why `load` can hand out a plain `&T`
//!
//! The classic hazard with `AtomicPtr` publication is reclamation: a
//! reader loads the pointer, a writer swaps and frees the old value, the
//! reader dereferences freed memory. `SwapCell` sidesteps the problem by
//! **never freeing a published value before the cell itself drops**:
//! `swap` moves the previous boxed value onto a retired list that lives
//! as long as the cell. Readers can therefore hold the borrowed `&T` for
//! as long as they hold `&SwapCell` — no epochs, no hazard pointers, no
//! `Arc` ping-pong on the read path.
//!
//! The cost is that retired values accumulate. That is the deliberate
//! trade: swaps are tied to rare topology events (a dead shard respawning
//! caps out at `shards_lost` swaps over the process lifetime), so the
//! retired list stays tiny while the read path stays one load.

use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::Mutex;

/// One immutable published value; lock-free to read, mutex-serialized
/// (and deliberately rare) to replace. See the module docs for the
/// reclamation contract.
pub struct SwapCell<T> {
    current: AtomicPtr<T>,
    generation: AtomicU64,
    /// Every previously published value, kept alive until the cell drops
    /// so outstanding `load` borrows can never dangle.
    retired: Mutex<Vec<Box<T>>>,
}

impl<T> SwapCell<T> {
    /// A cell publishing `value` at generation 0.
    pub fn new(value: T) -> Self {
        SwapCell {
            current: AtomicPtr::new(Box::into_raw(Box::new(value))),
            generation: AtomicU64::new(0),
            retired: Mutex::new(Vec::new()),
        }
    }

    /// Borrow the currently published value: one `Acquire` load.
    pub fn load(&self) -> &T {
        // SAFETY: `current` always points at a live boxed T — values are
        // only retired (kept alive), never freed, until Drop, and Drop
        // requires exclusive access, which outstanding borrows of `self`
        // prevent.
        unsafe { &*self.current.load(Ordering::Acquire) }
    }

    /// The number of swaps performed so far.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Publish a new value, retiring (not freeing) the previous one.
    /// Returns the new generation.
    pub fn swap(&self, value: T) -> u64 {
        let fresh = Box::into_raw(Box::new(value));
        let mut retired = self.retired.lock().unwrap_or_else(|e| e.into_inner());
        let old = self.current.swap(fresh, Ordering::AcqRel);
        // SAFETY: `old` came out of `Box::into_raw` (in `new` or a prior
        // swap) and is no longer reachable through `current`; we own it.
        retired.push(unsafe { Box::from_raw(old) });
        self.generation.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Number of retired (still-alive) previous values — exposed so tests
    /// and telemetry can verify swaps stay rare.
    pub fn retired_len(&self) -> usize {
        self.retired.lock().unwrap_or_else(|e| e.into_inner()).len()
    }
}

impl<T> Drop for SwapCell<T> {
    fn drop(&mut self) {
        // SAFETY: exclusive access; no borrows from `load` can outlive
        // `&self`. The retired list drops itself.
        drop(unsafe { Box::from_raw(*self.current.get_mut()) });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn load_sees_latest_swap() {
        let cell = SwapCell::new(vec![1u64]);
        assert_eq!(cell.load(), &vec![1]);
        assert_eq!(cell.swap(vec![2, 3]), 1);
        assert_eq!(cell.load(), &vec![2, 3]);
        assert_eq!(cell.generation(), 1);
        assert_eq!(cell.retired_len(), 1);
    }

    #[test]
    fn borrow_taken_before_swap_stays_valid() {
        let cell = SwapCell::new(String::from("alpha"));
        let before = cell.load();
        cell.swap(String::from("beta"));
        // `before` still points at the retired value — alive until drop.
        assert_eq!(before, "alpha");
        assert_eq!(cell.load(), "beta");
    }

    #[test]
    fn concurrent_readers_see_a_published_value() {
        let cell = Arc::new(SwapCell::new(0u64));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let v = *cell.load();
                        assert!(v >= last, "published values went backwards");
                        last = v;
                    }
                })
            })
            .collect();
        for v in 1..200u64 {
            cell.swap(v);
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(cell.generation(), 199);
        assert_eq!(cell.retired_len(), 199);
    }
}

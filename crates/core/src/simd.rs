//! Runtime ISA dispatch and batched slice kernels.
//!
//! The hot inner loops of the workspace — Count-Min cell adds, Misra-Gries
//! counter decrements, rank scans — are all flat passes over `u64` slices.
//! This module gives them one home: a scalar implementation that is the
//! **single source of truth for semantics**, plus `std::arch` variants
//! (x86_64 AVX2/AVX-512, aarch64 NEON) selected once at startup by
//! [`active_isa`]. Every vector variant must produce bit-identical output
//! to its scalar twin; the differential tests at the bottom of this file
//! and the workspace-level `tests/kernel_equivalence.rs` suite pin that.
//!
//! Dispatch rules:
//!
//! - `MS_FORCE_SCALAR=1` in the environment forces the scalar path
//!   everywhere, so CI can exercise both paths on any host.
//! - On x86_64, AVX-512 (F+DQ) is preferred, then AVX2, per
//!   `is_x86_feature_detected!`; on aarch64 NEON is baseline and always
//!   available.
//! - Anything else falls back to scalar.
//!
//! The slice kernels in this file deliberately serve [`Isa::Avx512`] with
//! their 256-bit bodies: flat adds and compares are load/store-bound, so
//! wider lanes buy nothing here. The tier exists for the ALU-bound hash
//! kernels in `ms-sketches::batch`, where 8 × u64 lanes, native 64-bit
//! multiplies and mask registers pay off.
//!
//! The kernels deliberately operate on raw slices rather than summary
//! types: the summary crates stage their work into fixed-width lane
//! buffers (hash-then-update split) and hand the flat arrays here.

use std::sync::OnceLock;

/// Instruction set selected for the batched kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Isa {
    /// Portable scalar Rust — the semantic reference.
    Scalar,
    /// x86_64 AVX2 (256-bit lanes, 4 × u64).
    Avx2,
    /// x86_64 AVX-512 F+DQ (512-bit lanes, 8 × u64, mask registers).
    Avx512,
    /// aarch64 NEON (128-bit lanes, 2 × u64).
    Neon,
}

impl Isa {
    /// Short lowercase label for logs and bench records.
    pub fn label(self) -> &'static str {
        match self {
            Isa::Scalar => "scalar",
            Isa::Avx2 => "avx2",
            Isa::Avx512 => "avx512",
            Isa::Neon => "neon",
        }
    }

    /// True when this ISA has dedicated vector kernels (i.e. is not the
    /// scalar reference).
    pub fn is_vector(self) -> bool {
        !matches!(self, Isa::Scalar)
    }
}

/// True when `MS_FORCE_SCALAR=1` (or any non-empty, non-`0` value) is set.
pub fn force_scalar() -> bool {
    static FORCED: OnceLock<bool> = OnceLock::new();
    *FORCED.get_or_init(|| {
        std::env::var("MS_FORCE_SCALAR")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false)
    })
}

fn detect() -> Isa {
    if force_scalar() {
        return Isa::Scalar;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx512f") && is_x86_feature_detected!("avx512dq") {
            return Isa::Avx512;
        }
        if is_x86_feature_detected!("avx2") {
            return Isa::Avx2;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        return Isa::Neon;
    }
    #[allow(unreachable_code)]
    Isa::Scalar
}

/// The ISA the dispatched kernels will use on this host, detected once.
pub fn active_isa() -> Isa {
    static ACTIVE: OnceLock<Isa> = OnceLock::new();
    *ACTIVE.get_or_init(detect)
}

/// Every ISA whose kernels can run on this host, scalar first.
///
/// Unlike [`active_isa`] this ignores `MS_FORCE_SCALAR` — explicit
/// `*_with` calls are always legal — so differential tests can pin each
/// vector tier against the scalar reference, not just the preferred one.
pub fn supported_isas() -> Vec<Isa> {
    #[allow(unused_mut)]
    let mut isas = vec![Isa::Scalar];
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx2") {
            isas.push(Isa::Avx2);
        }
        if is_x86_feature_detected!("avx512f") && is_x86_feature_detected!("avx512dq") {
            isas.push(Isa::Avx512);
        }
    }
    #[cfg(target_arch = "aarch64")]
    isas.push(Isa::Neon);
    isas
}

// ---------------------------------------------------------------------------
// add_slices: dst[i] += src[i]
// ---------------------------------------------------------------------------

/// Scalar reference: element-wise wrapping add of `src` into `dst`.
///
/// Panics if the lengths differ — callers align shapes before batching.
pub fn add_slices_scalar(dst: &mut [u64], src: &[u64]) {
    assert_eq!(dst.len(), src.len(), "add_slices length mismatch");
    for (a, b) in dst.iter_mut().zip(src.iter()) {
        *a = a.wrapping_add(*b);
    }
}

/// Element-wise `dst[i] += src[i]` using the given ISA.
pub fn add_slices_with(isa: Isa, dst: &mut [u64], src: &[u64]) {
    match isa {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 | Isa::Avx512 => unsafe { x86::add_slices_avx2(dst, src) },
        #[cfg(target_arch = "aarch64")]
        Isa::Neon => neon::add_slices_neon(dst, src),
        _ => add_slices_scalar(dst, src),
    }
}

/// Element-wise `dst[i] += src[i]` on the host-detected ISA.
pub fn add_slices(dst: &mut [u64], src: &[u64]) {
    add_slices_with(active_isa(), dst, src)
}

// ---------------------------------------------------------------------------
// add_slices_multi: dst[i] += sum_k srcs[k][i]  (fused multiway merge)
// ---------------------------------------------------------------------------

/// Scalar reference: fused multiway add — one pass over `dst`, summing the
/// matching cell of every source. Bit-identical to folding the sources in
/// sequentially (u64 wrapping adds commute and associate), but touches
/// `dst` once instead of `srcs.len()` times.
pub fn add_slices_multi_scalar(dst: &mut [u64], srcs: &[&[u64]]) {
    for s in srcs {
        assert_eq!(dst.len(), s.len(), "add_slices_multi length mismatch");
    }
    for (i, a) in dst.iter_mut().enumerate() {
        let mut acc = *a;
        for s in srcs {
            acc = acc.wrapping_add(s[i]);
        }
        *a = acc;
    }
}

/// Fused multiway `dst[i] += sum_k srcs[k][i]` using the given ISA.
pub fn add_slices_multi_with(isa: Isa, dst: &mut [u64], srcs: &[&[u64]]) {
    match isa {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 | Isa::Avx512 => unsafe { x86::add_slices_multi_avx2(dst, srcs) },
        #[cfg(target_arch = "aarch64")]
        Isa::Neon => neon::add_slices_multi_neon(dst, srcs),
        _ => add_slices_multi_scalar(dst, srcs),
    }
}

/// Fused multiway add on the host-detected ISA.
pub fn add_slices_multi(dst: &mut [u64], srcs: &[&[u64]]) {
    add_slices_multi_with(active_isa(), dst, srcs)
}

// ---------------------------------------------------------------------------
// sub_clamp: v = if v > s { v - s } else { 0 }  (Misra-Gries decrement)
// ---------------------------------------------------------------------------

/// Scalar reference: subtract `s` from every value, clamping at zero.
/// This is the Misra-Gries / SpaceSaving prune decrement applied to a
/// staged lane array of counter values.
pub fn sub_clamp_scalar(values: &mut [u64], s: u64) {
    for v in values.iter_mut() {
        *v = v.saturating_sub(s);
    }
}

/// Branch-free clamped subtract using the given ISA.
pub fn sub_clamp_with(isa: Isa, values: &mut [u64], s: u64) {
    match isa {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 | Isa::Avx512 => unsafe { x86::sub_clamp_avx2(values, s) },
        #[cfg(target_arch = "aarch64")]
        Isa::Neon => neon::sub_clamp_neon(values, s),
        _ => sub_clamp_scalar(values, s),
    }
}

/// Clamped subtract on the host-detected ISA.
pub fn sub_clamp(values: &mut [u64], s: u64) {
    sub_clamp_with(active_isa(), values, s)
}

// ---------------------------------------------------------------------------
// count_gt: how many values exceed a threshold (prune survivor count)
// ---------------------------------------------------------------------------

/// Scalar reference: number of entries strictly greater than `s`.
pub fn count_gt_scalar(values: &[u64], s: u64) -> usize {
    values.iter().filter(|&&v| v > s).count()
}

/// Threshold count using the given ISA.
///
/// Values are compared as unsigned; the AVX2 variant biases both sides by
/// `1 << 63` so the signed `cmpgt` instruction orders them correctly.
pub fn count_gt_with(isa: Isa, values: &[u64], s: u64) -> usize {
    match isa {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 | Isa::Avx512 => unsafe { x86::count_gt_avx2(values, s) },
        #[cfg(target_arch = "aarch64")]
        Isa::Neon => neon::count_gt_neon(values, s),
        _ => count_gt_scalar(values, s),
    }
}

/// Threshold count on the host-detected ISA.
pub fn count_gt(values: &[u64], s: u64) -> usize {
    count_gt_with(active_isa(), values, s)
}

// ---------------------------------------------------------------------------
// x86_64 AVX2 variants
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::*;

    /// # Safety
    /// Caller must ensure AVX2 is available.
    #[target_feature(enable = "avx2")]
    pub unsafe fn add_slices_avx2(dst: &mut [u64], src: &[u64]) {
        assert_eq!(dst.len(), src.len(), "add_slices length mismatch");
        let n = dst.len();
        let lanes = n / 4 * 4;
        let dp = dst.as_mut_ptr();
        let sp = src.as_ptr();
        let mut i = 0;
        while i < lanes {
            let a = _mm256_loadu_si256(dp.add(i) as *const __m256i);
            let b = _mm256_loadu_si256(sp.add(i) as *const __m256i);
            _mm256_storeu_si256(dp.add(i) as *mut __m256i, _mm256_add_epi64(a, b));
            i += 4;
        }
        for j in lanes..n {
            dst[j] = dst[j].wrapping_add(src[j]);
        }
    }

    /// # Safety
    /// Caller must ensure AVX2 is available.
    #[target_feature(enable = "avx2")]
    pub unsafe fn add_slices_multi_avx2(dst: &mut [u64], srcs: &[&[u64]]) {
        for s in srcs {
            assert_eq!(dst.len(), s.len(), "add_slices_multi length mismatch");
        }
        let n = dst.len();
        let lanes = n / 4 * 4;
        let dp = dst.as_mut_ptr();
        let mut i = 0;
        while i < lanes {
            let mut acc = _mm256_loadu_si256(dp.add(i) as *const __m256i);
            for s in srcs {
                let b = _mm256_loadu_si256(s.as_ptr().add(i) as *const __m256i);
                acc = _mm256_add_epi64(acc, b);
            }
            _mm256_storeu_si256(dp.add(i) as *mut __m256i, acc);
            i += 4;
        }
        for j in lanes..n {
            let mut acc = dst[j];
            for s in srcs {
                acc = acc.wrapping_add(s[j]);
            }
            dst[j] = acc;
        }
    }

    /// # Safety
    /// Caller must ensure AVX2 is available.
    #[target_feature(enable = "avx2")]
    pub unsafe fn sub_clamp_avx2(values: &mut [u64], s: u64) {
        let n = values.len();
        let lanes = n / 4 * 4;
        let vp = values.as_mut_ptr();
        let sv = _mm256_set1_epi64x(s as i64);
        // Unsigned max(v, s) via sign-bias + signed compare, then v - s
        // saturates exactly like `saturating_sub`.
        let bias = _mm256_set1_epi64x(i64::MIN);
        let sb = _mm256_xor_si256(sv, bias);
        let mut i = 0;
        while i < lanes {
            let v = _mm256_loadu_si256(vp.add(i) as *const __m256i);
            let vb = _mm256_xor_si256(v, bias);
            // mask lane = all-ones where v > s (unsigned)
            let gt = _mm256_cmpgt_epi64(vb, sb);
            let diff = _mm256_sub_epi64(v, sv);
            _mm256_storeu_si256(vp.add(i) as *mut __m256i, _mm256_and_si256(diff, gt));
            i += 4;
        }
        for v in &mut values[lanes..] {
            *v = v.saturating_sub(s);
        }
    }

    /// # Safety
    /// Caller must ensure AVX2 is available.
    #[target_feature(enable = "avx2")]
    pub unsafe fn count_gt_avx2(values: &[u64], s: u64) -> usize {
        let n = values.len();
        let lanes = n / 4 * 4;
        let vp = values.as_ptr();
        let bias = _mm256_set1_epi64x(i64::MIN);
        let sb = _mm256_xor_si256(_mm256_set1_epi64x(s as i64), bias);
        // Each matching lane contributes an all-ones word, i.e. -1; sum the
        // lanes and negate at the end.
        let mut acc = _mm256_setzero_si256();
        let mut i = 0;
        while i < lanes {
            let v = _mm256_loadu_si256(vp.add(i) as *const __m256i);
            let gt = _mm256_cmpgt_epi64(_mm256_xor_si256(v, bias), sb);
            acc = _mm256_add_epi64(acc, gt);
            i += 4;
        }
        let mut lanes_out = [0u64; 4];
        _mm256_storeu_si256(lanes_out.as_mut_ptr() as *mut __m256i, acc);
        let mut count = lanes_out
            .iter()
            .fold(0u64, |a, &b| a.wrapping_add(b))
            .wrapping_neg() as usize;
        for &v in &values[lanes..] {
            if v > s {
                count += 1;
            }
        }
        count
    }
}

// ---------------------------------------------------------------------------
// aarch64 NEON variants
// ---------------------------------------------------------------------------

#[cfg(target_arch = "aarch64")]
mod neon {
    use std::arch::aarch64::*;

    pub fn add_slices_neon(dst: &mut [u64], src: &[u64]) {
        assert_eq!(dst.len(), src.len(), "add_slices length mismatch");
        let n = dst.len();
        let lanes = n / 2 * 2;
        unsafe {
            let dp = dst.as_mut_ptr();
            let sp = src.as_ptr();
            let mut i = 0;
            while i < lanes {
                let a = vld1q_u64(dp.add(i));
                let b = vld1q_u64(sp.add(i));
                vst1q_u64(dp.add(i), vaddq_u64(a, b));
                i += 2;
            }
        }
        for j in lanes..n {
            dst[j] = dst[j].wrapping_add(src[j]);
        }
    }

    pub fn add_slices_multi_neon(dst: &mut [u64], srcs: &[&[u64]]) {
        for s in srcs {
            assert_eq!(dst.len(), s.len(), "add_slices_multi length mismatch");
        }
        let n = dst.len();
        let lanes = n / 2 * 2;
        unsafe {
            let dp = dst.as_mut_ptr();
            let mut i = 0;
            while i < lanes {
                let mut acc = vld1q_u64(dp.add(i));
                for s in srcs {
                    acc = vaddq_u64(acc, vld1q_u64(s.as_ptr().add(i)));
                }
                vst1q_u64(dp.add(i), acc);
                i += 2;
            }
        }
        for j in lanes..n {
            let mut acc = dst[j];
            for s in srcs {
                acc = acc.wrapping_add(s[j]);
            }
            dst[j] = acc;
        }
    }

    pub fn sub_clamp_neon(values: &mut [u64], s: u64) {
        let n = values.len();
        let lanes = n / 2 * 2;
        unsafe {
            let vp = values.as_mut_ptr();
            let sv = vdupq_n_u64(s);
            let mut i = 0;
            while i < lanes {
                let v = vld1q_u64(vp.add(i));
                let gt = vcgtq_u64(v, sv);
                let diff = vsubq_u64(v, sv);
                vst1q_u64(vp.add(i), vandq_u64(diff, gt));
                i += 2;
            }
        }
        for v in &mut values[lanes..] {
            *v = v.saturating_sub(s);
        }
    }

    pub fn count_gt_neon(values: &[u64], s: u64) -> usize {
        let n = values.len();
        let lanes = n / 2 * 2;
        let mut count = unsafe {
            let vp = values.as_ptr();
            let sv = vdupq_n_u64(s);
            let mut acc = vdupq_n_u64(0);
            let mut i = 0;
            while i < lanes {
                let v = vld1q_u64(vp.add(i));
                // matching lanes are all-ones (= -1); accumulate and negate
                acc = vaddq_u64(acc, vcgtq_u64(v, sv));
                i += 2;
            }
            let mut lanes_out = [0u64; 2];
            vst1q_u64(lanes_out.as_mut_ptr(), acc);
            lanes_out[0].wrapping_add(lanes_out[1]).wrapping_neg() as usize
        };
        for &v in &values[lanes..] {
            if v > s {
                count += 1;
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;

    const SEEDS: [u64; 3] = [0xF417_5EED, 0xB0B5_CAFE, 0x2026_0806];

    fn vectors(seed: u64, len: usize) -> Vec<u64> {
        let mut rng = Rng64::new(seed);
        (0..len).map(|_| rng.next_u64()).collect()
    }

    #[test]
    fn detection_is_stable_and_labelled() {
        let isa = active_isa();
        assert_eq!(isa, active_isa());
        assert!(!isa.label().is_empty());
        if force_scalar() {
            assert_eq!(isa, Isa::Scalar);
        }
    }

    #[test]
    fn add_slices_vector_matches_scalar() {
        for &seed in &SEEDS {
            for len in [0, 1, 3, 4, 7, 64, 257] {
                let src = vectors(seed, len);
                let mut a = vectors(seed ^ 1, len);
                add_slices_scalar(&mut a, &src);
                for isa in supported_isas() {
                    let mut b = vectors(seed ^ 1, len);
                    add_slices_with(isa, &mut b, &src);
                    assert_eq!(a, b, "seed {seed:#x} len {len} isa {isa:?}");
                }
            }
        }
    }

    #[test]
    fn add_slices_multi_matches_sequential_folds() {
        for &seed in &SEEDS {
            let srcs: Vec<Vec<u64>> = (0..5).map(|k| vectors(seed ^ k, 131)).collect();
            let refs: Vec<&[u64]> = srcs.iter().map(|s| s.as_slice()).collect();
            let mut seq = vectors(seed ^ 99, 131);
            for s in &refs {
                add_slices_scalar(&mut seq, s);
            }
            for isa in supported_isas() {
                let mut fused = vectors(seed ^ 99, 131);
                add_slices_multi_with(isa, &mut fused, &refs);
                assert_eq!(fused, seq, "seed {seed:#x} isa {isa:?}");
            }
        }
    }

    #[test]
    fn sub_clamp_vector_matches_scalar() {
        for &seed in &SEEDS {
            let base = vectors(seed, 101);
            for s in [0, 1, u64::MAX / 2, u64::MAX] {
                let mut a = base.clone();
                sub_clamp_scalar(&mut a, s);
                for isa in supported_isas() {
                    let mut b = base.clone();
                    sub_clamp_with(isa, &mut b, s);
                    assert_eq!(a, b, "seed {seed:#x} s {s} isa {isa:?}");
                }
            }
        }
    }

    #[test]
    fn count_gt_vector_matches_scalar() {
        for &seed in &SEEDS {
            // Small values exercise both compare outcomes; raw u64s exercise
            // the sign-bias trick near the top of the range.
            let mut vals = vectors(seed, 97);
            vals.extend(vectors(seed ^ 7, 97).iter().map(|v| v % 16));
            for s in [0, 3, 15, u64::MAX - 1, u64::MAX] {
                for isa in supported_isas() {
                    assert_eq!(
                        count_gt_scalar(&vals, s),
                        count_gt_with(isa, &vals, s),
                        "seed {seed:#x} s {s} isa {isa:?}"
                    );
                }
            }
        }
    }
}

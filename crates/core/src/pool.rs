//! Lock-free recycling pool for reusable `Vec` buffers.
//!
//! The aggregation service moves one `Vec<u64>` per ingest batch from the
//! caller through the WAL and a shard queue to a worker thread, which drops
//! it after absorbing the items. At steady state that is one heap
//! allocation and one deallocation per batch for a buffer whose capacity
//! never changes. [`BufferPool`] removes both: workers return spent buffers
//! with [`BufferPool::put`] and callers fetch them back with
//! [`BufferPool::get`], so the same handful of allocations circulate for
//! the life of the engine.
//!
//! The pool is a fixed array of slots, each a tiny state machine
//! (`EMPTY → BUSY → FULL → BUSY → EMPTY`) driven by compare-and-swap — no
//! locks, no allocation in `get` or `put` themselves. When every slot is
//! empty, `get` falls back to a plain `Vec::new()` and counts a **miss**;
//! when every slot is full, `put` drops the buffer and counts a
//! **discard**. Both counters are exported so an operator can see when the
//! pool is undersized (misses climb) or oversized (discards climb).

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};

/// Slot holds no buffer.
const EMPTY: u8 = 0;
/// Slot is being written or taken by exactly one thread.
const BUSY: u8 = 1;
/// Slot holds a recycled buffer ready for reuse.
const FULL: u8 = 2;

struct Slot<T> {
    state: AtomicU8,
    buf: UnsafeCell<Vec<T>>,
}

/// A fixed-size, lock-free pool of reusable `Vec<T>` buffers.
///
/// `get` and `put` never allocate and never block: each is a short scan of
/// the slot array with one successful compare-and-swap. Exhaustion
/// degrades to plain allocation (counted), never to an error.
pub struct BufferPool<T> {
    slots: Box<[Slot<T>]>,
    /// Rotating start index so concurrent callers spread over the array
    /// instead of all contending on slot 0.
    hint: AtomicUsize,
    reuses: AtomicU64,
    misses: AtomicU64,
    discards: AtomicU64,
}

// SAFETY: a slot's `buf` is only touched by the single thread that CASed
// its state to BUSY; the Acquire/Release pair on `state` orders those
// accesses across threads.
unsafe impl<T: Send> Sync for BufferPool<T> {}
unsafe impl<T: Send> Send for BufferPool<T> {}

impl<T> BufferPool<T> {
    /// A pool with room for `slots` idle buffers. Zero slots is allowed
    /// and turns the pool into a pass-through (every `get` is a miss,
    /// every `put` a discard).
    pub fn new(slots: usize) -> Self {
        BufferPool {
            slots: (0..slots)
                .map(|_| Slot {
                    state: AtomicU8::new(EMPTY),
                    buf: UnsafeCell::new(Vec::new()),
                })
                .collect(),
            hint: AtomicUsize::new(0),
            reuses: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            discards: AtomicU64::new(0),
        }
    }

    /// Fetch a cleared buffer, reusing a pooled one when available. On an
    /// empty pool this returns `Vec::new()` (no reserved capacity — the
    /// caller's first pushes will allocate) and counts a miss.
    pub fn get(&self) -> Vec<T> {
        let n = self.slots.len();
        if n != 0 {
            let start = self.hint.load(Ordering::Relaxed);
            for i in 0..n {
                let slot = &self.slots[(start + i) % n];
                if slot.state.load(Ordering::Relaxed) != FULL {
                    continue;
                }
                if slot
                    .state
                    .compare_exchange(FULL, BUSY, Ordering::Acquire, Ordering::Relaxed)
                    .is_err()
                {
                    continue;
                }
                // SAFETY: we hold the slot in BUSY, so no other thread
                // touches `buf` until we release it below.
                let buf = unsafe { std::mem::take(&mut *slot.buf.get()) };
                slot.state.store(EMPTY, Ordering::Release);
                self.hint.store((start + i + 1) % n, Ordering::Relaxed);
                self.reuses.fetch_add(1, Ordering::Relaxed);
                return buf;
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        Vec::new()
    }

    /// Return a spent buffer to the pool. The buffer is cleared (elements
    /// dropped, capacity kept); if every slot is already full it is
    /// dropped and counted as a discard.
    pub fn put(&self, mut buf: Vec<T>) {
        buf.clear();
        if buf.capacity() == 0 {
            // Nothing worth recycling; don't burn a slot on it.
            return;
        }
        let n = self.slots.len();
        let start = self.hint.load(Ordering::Relaxed);
        for i in 0..n {
            let slot = &self.slots[(start + i) % n];
            if slot.state.load(Ordering::Relaxed) != EMPTY {
                continue;
            }
            if slot
                .state
                .compare_exchange(EMPTY, BUSY, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
            {
                continue;
            }
            // SAFETY: as in `get` — exclusive access while BUSY.
            unsafe { *slot.buf.get() = buf };
            slot.state.store(FULL, Ordering::Release);
            return;
        }
        self.discards.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of `get` calls served from the pool.
    pub fn reuses(&self) -> u64 {
        self.reuses.load(Ordering::Relaxed)
    }

    /// Number of `get` calls that fell back to a fresh allocation.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of returned buffers dropped because the pool was full.
    pub fn discards(&self) -> u64 {
        self.discards.load(Ordering::Relaxed)
    }

    /// Number of buffers currently parked in the pool.
    pub fn idle(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.state.load(Ordering::Relaxed) == FULL)
            .count()
    }

    /// Slot capacity the pool was built with.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn round_trip_reuses_capacity() {
        let pool = BufferPool::new(4);
        let mut buf: Vec<u64> = pool.get();
        assert_eq!(pool.misses(), 1);
        buf.extend(0..1000);
        let cap = buf.capacity();
        let ptr = buf.as_ptr();
        pool.put(buf);
        let buf2 = pool.get();
        assert_eq!(pool.reuses(), 1);
        assert!(buf2.is_empty());
        assert_eq!(buf2.capacity(), cap);
        assert_eq!(buf2.as_ptr(), ptr, "same backing storage came back");
    }

    #[test]
    fn exhaustion_falls_back_to_alloc_and_counts() {
        let pool: BufferPool<u64> = BufferPool::new(2);
        for _ in 0..5 {
            let _ = pool.get();
        }
        assert_eq!(pool.misses(), 5);
        assert_eq!(pool.reuses(), 0);
    }

    #[test]
    fn overflow_discards() {
        let pool: BufferPool<u64> = BufferPool::new(1);
        pool.put(Vec::with_capacity(8));
        pool.put(Vec::with_capacity(8));
        assert_eq!(pool.discards(), 1);
        assert_eq!(pool.idle(), 1);
    }

    #[test]
    fn zero_capacity_pool_is_a_pass_through() {
        let pool: BufferPool<u64> = BufferPool::new(0);
        let b = pool.get();
        assert!(b.is_empty());
        pool.put(Vec::with_capacity(8));
        assert_eq!(pool.misses(), 1);
        assert_eq!(pool.discards(), 1);
    }

    #[test]
    fn empty_returned_buffers_are_not_pooled() {
        let pool: BufferPool<u64> = BufferPool::new(2);
        pool.put(Vec::new());
        assert_eq!(pool.idle(), 0);
        assert_eq!(pool.discards(), 0);
    }

    #[test]
    fn concurrent_get_put_never_duplicates_a_buffer() {
        let pool = Arc::new(BufferPool::<u64>::new(8));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || {
                    for i in 0..2000u64 {
                        let mut buf = pool.get();
                        assert!(buf.is_empty(), "pooled buffer arrived dirty");
                        buf.push(t * 10_000 + i);
                        pool.put(buf);
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        assert_eq!(
            pool.reuses() + pool.misses(),
            8000,
            "every get was either a reuse or a miss"
        );
    }
}

//! Exact ground-truth oracles.
//!
//! Every experiment and property test measures a summary's answers against
//! the exact answer on the full dataset. [`FrequencyOracle`] is an exact
//! counter table; [`RankOracle`] holds the sorted dataset and answers rank
//! and quantile queries exactly, with the lower/upper rank convention needed
//! to score estimates on multisets with duplicates.

use std::hash::Hash;

use crate::hash::FxHashMap;

/// Exact multiset counter: the ground truth for heavy-hitter experiments.
#[derive(Debug, Clone, Default)]
pub struct FrequencyOracle<I> {
    counts: FxHashMap<I, u64>,
    n: u64,
}

impl<I: Eq + Hash + Clone> FrequencyOracle<I> {
    /// Empty oracle.
    pub fn new() -> Self {
        FrequencyOracle {
            counts: FxHashMap::default(),
            n: 0,
        }
    }

    /// Build from a stream.
    pub fn from_stream<T: IntoIterator<Item = I>>(items: T) -> Self {
        let mut o = Self::new();
        for item in items {
            o.insert(item);
        }
        o
    }

    /// Count one occurrence.
    pub fn insert(&mut self, item: I) {
        self.insert_weighted(item, 1);
    }

    /// Count `weight` occurrences.
    pub fn insert_weighted(&mut self, item: I, weight: u64) {
        if weight == 0 {
            return;
        }
        *self.counts.entry(item).or_insert(0) += weight;
        self.n += weight;
    }

    /// Exact multiplicity of `item` (0 if absent).
    pub fn count(&self, item: &I) -> u64 {
        self.counts.get(item).copied().unwrap_or(0)
    }

    /// Total multiset cardinality `n`.
    pub fn total(&self) -> u64 {
        self.n
    }

    /// Number of distinct items.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Items with exact frequency `> εn` — the set a heavy-hitter summary
    /// with parameter ε must report (possibly among false positives).
    pub fn heavy_hitters(&self, epsilon: f64) -> Vec<(I, u64)> {
        let threshold = (epsilon * self.n as f64).floor() as u64;
        let mut out: Vec<(I, u64)> = self
            .counts
            .iter()
            .filter(|&(_, &c)| c > threshold)
            .map(|(i, &c)| (i.clone(), c))
            .collect();
        out.sort_by_key(|e| std::cmp::Reverse(e.1));
        out
    }

    /// The `k` most frequent items, ties broken arbitrarily but
    /// deterministically by count only.
    pub fn top_k(&self, k: usize) -> Vec<(I, u64)> {
        let mut all: Vec<(I, u64)> = self.counts.iter().map(|(i, &c)| (i.clone(), c)).collect();
        all.sort_by_key(|e| std::cmp::Reverse(e.1));
        all.truncate(k);
        all
    }

    /// Second frequency moment `F₂ = Σ count(i)²` — ground truth for AMS.
    pub fn f2(&self) -> u128 {
        self.counts
            .values()
            .map(|&c| (c as u128) * (c as u128))
            .sum()
    }

    /// Iterate over `(item, exact count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&I, u64)> {
        self.counts.iter().map(|(i, &c)| (i, c))
    }

    /// Merge exact oracles (exact counting is trivially mergeable — the
    /// baseline against which summary sizes are judged).
    pub fn merge(mut self, other: Self) -> Self {
        for (item, c) in other.counts {
            *self.counts.entry(item).or_insert(0) += c;
        }
        self.n += other.n;
        self
    }
}

/// Exact rank/quantile oracle over a totally ordered dataset.
#[derive(Debug, Clone, Default)]
pub struct RankOracle<T> {
    sorted: Vec<T>,
}

impl<T: Ord + Clone> RankOracle<T> {
    /// Build from any iterator (sorts a private copy).
    pub fn from_stream<S: IntoIterator<Item = T>>(items: S) -> Self {
        let mut sorted: Vec<T> = items.into_iter().collect();
        sorted.sort_unstable();
        RankOracle { sorted }
    }

    /// Dataset size `n`.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if no data.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Lower rank: number of elements strictly less than `x`.
    pub fn rank_lower(&self, x: &T) -> usize {
        self.sorted.partition_point(|v| v < x)
    }

    /// Upper rank: number of elements less than or equal to `x`.
    pub fn rank_upper(&self, x: &T) -> usize {
        self.sorted.partition_point(|v| v <= x)
    }

    /// The smallest absolute difference between `estimate` and any exact
    /// rank consistent with `x` (the standard scoring rule on multisets:
    /// an estimate inside `[rank_lower, rank_upper]` has error 0).
    pub fn rank_error(&self, x: &T, estimate: u64) -> u64 {
        let lo = self.rank_lower(x) as u64;
        let hi = self.rank_upper(x) as u64;
        if estimate < lo {
            lo - estimate
        } else {
            estimate.saturating_sub(hi)
        }
    }

    /// Exact φ-quantile: the element of rank `⌈φ·n⌉` (clamped), φ ∈ [0,1].
    pub fn quantile(&self, phi: f64) -> Option<&T> {
        if self.sorted.is_empty() {
            return None;
        }
        let n = self.sorted.len();
        let idx = ((phi * n as f64).ceil() as usize).clamp(1, n) - 1;
        Some(&self.sorted[idx])
    }

    /// The sorted data (for constructing query sets).
    pub fn sorted(&self) -> &[T] {
        &self.sorted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequency_counts_and_total() {
        let o = FrequencyOracle::from_stream(vec![1, 2, 2, 3, 3, 3]);
        assert_eq!(o.count(&1), 1);
        assert_eq!(o.count(&2), 2);
        assert_eq!(o.count(&3), 3);
        assert_eq!(o.count(&9), 0);
        assert_eq!(o.total(), 6);
        assert_eq!(o.distinct(), 3);
    }

    #[test]
    fn weighted_insert_zero_is_noop() {
        let mut o = FrequencyOracle::new();
        o.insert_weighted(5, 0);
        assert_eq!(o.total(), 0);
        assert_eq!(o.distinct(), 0);
    }

    #[test]
    fn heavy_hitters_threshold_is_strict() {
        // n = 10, eps = 0.2 → threshold 2, report counts > 2 only.
        let o = FrequencyOracle::from_stream(vec![1, 1, 1, 2, 2, 3, 3, 3, 3, 4]);
        let hh = o.heavy_hitters(0.2);
        assert_eq!(hh, vec![(3, 4), (1, 3)]);
    }

    #[test]
    fn top_k_orders_by_count() {
        let o = FrequencyOracle::from_stream(vec![1, 2, 2, 3, 3, 3]);
        let top = o.top_k(2);
        assert_eq!(top, vec![(3, 3), (2, 2)]);
    }

    #[test]
    fn f2_moment() {
        let o = FrequencyOracle::from_stream(vec![1, 1, 2]);
        assert_eq!(o.f2(), 4 + 1);
    }

    #[test]
    fn oracle_merge_adds_counts() {
        let a = FrequencyOracle::from_stream(vec![1, 1, 2]);
        let b = FrequencyOracle::from_stream(vec![2, 3]);
        let m = a.merge(b);
        assert_eq!(m.count(&1), 2);
        assert_eq!(m.count(&2), 2);
        assert_eq!(m.count(&3), 1);
        assert_eq!(m.total(), 5);
    }

    #[test]
    fn rank_lower_upper_on_duplicates() {
        let o = RankOracle::from_stream(vec![10, 20, 20, 20, 30]);
        assert_eq!(o.rank_lower(&20), 1);
        assert_eq!(o.rank_upper(&20), 4);
        assert_eq!(o.rank_lower(&5), 0);
        assert_eq!(o.rank_upper(&35), 5);
    }

    #[test]
    fn rank_error_zero_inside_band() {
        let o = RankOracle::from_stream(vec![10, 20, 20, 20, 30]);
        for est in 1..=4u64 {
            assert_eq!(o.rank_error(&20, est), 0);
        }
        assert_eq!(o.rank_error(&20, 0), 1);
        assert_eq!(o.rank_error(&20, 6), 2);
    }

    #[test]
    fn quantiles_match_definition() {
        let o = RankOracle::from_stream((1..=100).collect::<Vec<u32>>());
        assert_eq!(o.quantile(0.0), Some(&1)); // ceil(0) clamped to rank 1
        assert_eq!(o.quantile(0.5), Some(&50));
        assert_eq!(o.quantile(1.0), Some(&100));
        assert_eq!(o.quantile(0.505), Some(&51));
    }

    #[test]
    fn quantile_of_empty_is_none() {
        let o: RankOracle<u32> = RankOracle::from_stream(Vec::new());
        assert_eq!(o.quantile(0.5), None);
        assert!(o.is_empty());
    }

    #[test]
    fn quantile_single_element() {
        let o = RankOracle::from_stream(vec![7]);
        assert_eq!(o.quantile(0.0), Some(&7));
        assert_eq!(o.quantile(0.37), Some(&7));
        assert_eq!(o.quantile(1.0), Some(&7));
    }
}

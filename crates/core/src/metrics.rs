//! Error-measurement helpers shared by tests and the experiment harness.

use crate::json::{Json, ToJson};

/// Summary statistics over a set of observed errors.
///
/// Experiments collect one error value per query (or per trial) and report
/// the distribution; the paper's bounds are compared against `max` (for
/// deterministic guarantees) or high percentiles (for with-high-probability
/// guarantees).
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorStats {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Maximum.
    pub max: f64,
    /// Median (p50).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// 99.9th percentile — the tail that matters once experiments make
    /// tens of thousands of queries per run.
    pub p999: f64,
}

impl ErrorStats {
    /// Compute statistics from raw observations. Returns an all-zero record
    /// for an empty input.
    pub fn from_values(values: &[f64]) -> Self {
        if values.is_empty() {
            return ErrorStats {
                count: 0,
                mean: 0.0,
                max: 0.0,
                p50: 0.0,
                p95: 0.0,
                p99: 0.0,
                p999: 0.0,
            };
        }
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("errors must not be NaN"));
        let count = sorted.len();
        let mean = sorted.iter().sum::<f64>() / count as f64;
        ErrorStats {
            count,
            mean,
            max: *sorted.last().expect("non-empty"),
            p50: percentile(&sorted, 0.50),
            p95: percentile(&sorted, 0.95),
            p99: percentile(&sorted, 0.99),
            p999: percentile(&sorted, 0.999),
        }
    }

    /// Convenience: compute stats over integer errors.
    pub fn from_u64(values: &[u64]) -> Self {
        let floats: Vec<f64> = values.iter().map(|&v| v as f64).collect();
        Self::from_values(&floats)
    }
}

impl ToJson for ErrorStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("count", Json::U64(self.count as u64)),
            ("mean", Json::F64(self.mean)),
            ("max", Json::F64(self.max)),
            ("p50", Json::F64(self.p50)),
            ("p95", Json::F64(self.p95)),
            ("p99", Json::F64(self.p99)),
            ("p999", Json::F64(self.p999)),
        ])
    }
}

/// Observed errors scored against a theoretical bound (e.g. `ε·n`).
///
/// The fault-injection harness builds one of these per schedule: the
/// mergeability theorem promises `stats.max ≤ bound` no matter what merge
/// tree the faults produced, so `ok()` is the pass/fail verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundCheck {
    /// The theoretical bound the observations must stay under.
    pub bound: f64,
    /// Distribution of the observed errors.
    pub stats: ErrorStats,
}

impl BoundCheck {
    /// Score `values` against `bound`.
    pub fn new(values: &[f64], bound: f64) -> Self {
        BoundCheck {
            bound,
            stats: ErrorStats::from_values(values),
        }
    }

    /// Score integer errors against `bound`.
    pub fn from_u64(values: &[u64], bound: f64) -> Self {
        BoundCheck {
            bound,
            stats: ErrorStats::from_u64(values),
        }
    }

    /// True when every observation respects the bound (vacuously true for
    /// zero observations).
    pub fn ok(&self) -> bool {
        self.stats.max <= self.bound
    }
}

impl ToJson for BoundCheck {
    fn to_json(&self) -> Json {
        Json::obj([
            ("bound", Json::F64(self.bound)),
            ("ok", Json::Bool(self.ok())),
            ("stats", self.stats.to_json()),
        ])
    }
}

/// Nearest-rank percentile on a pre-sorted slice: the element of rank
/// `⌈φ·n⌉` (1-based), clamped to the slice.
///
/// The product `φ·n` is computed in floating point, so a rank that is
/// mathematically an exact integer `k` can come out as `k + δ` for some
/// one-ulp `δ > 0` (e.g. `0.95 × 100` has no exact binary value) and a
/// naive `ceil` would then skip to rank `k + 1`. The `1e-9` slack absorbs
/// that asymmetry: it is far larger than any ulp at realistic `n`, and far
/// smaller than the gap to the next genuine rank.
pub fn percentile(sorted: &[f64], phi: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let n = sorted.len();
    let idx = ((phi * n as f64 - 1e-9).ceil() as usize).clamp(1, n) - 1;
    sorted[idx]
}

/// Relative error `|estimate − exact| / scale`, with a zero scale treated as
/// "exact must also be zero" (returns 0 if both are 0, +∞ otherwise).
pub fn relative_error(estimate: f64, exact: f64, scale: f64) -> f64 {
    let abs = (estimate - exact).abs();
    if scale == 0.0 {
        if abs == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        abs / scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_gives_zeros() {
        let s = ErrorStats::from_values(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.max, 0.0);
    }

    #[test]
    fn single_value() {
        let s = ErrorStats::from_values(&[3.0]);
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.p50, 3.0);
        assert_eq!(s.p99, 3.0);
        assert_eq!(s.p999, 3.0);
    }

    #[test]
    fn known_distribution() {
        let values: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        let s = ErrorStats::from_values(&values);
        assert_eq!(s.count, 100);
        assert_eq!(s.mean, 50.5);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.p50, 50.0);
        assert_eq!(s.p95, 95.0);
        assert_eq!(s.p99, 99.0);
        assert_eq!(s.p999, 100.0);
    }

    /// Nearest-rank properties, over many sizes: `φ = 1` is exactly the
    /// maximum, `φ` near 0 is exactly the minimum, and the result is
    /// monotone non-decreasing in `φ` — including the φ values whose
    /// product with `n` is mathematically integral but not representable
    /// (the fp asymmetry that used to skip a rank).
    #[test]
    fn percentile_properties() {
        for n in [1usize, 2, 3, 7, 10, 64, 100, 1000] {
            let sorted: Vec<f64> = (1..=n).map(|v| v as f64).collect();
            assert_eq!(percentile(&sorted, 1.0), *sorted.last().unwrap(), "n={n}");
            assert_eq!(percentile(&sorted, 0.0), sorted[0], "n={n}");
            let mut prev = f64::NEG_INFINITY;
            for i in 0..=1000 {
                let phi = i as f64 / 1000.0;
                let v = percentile(&sorted, phi);
                assert!(v >= prev, "percentile not monotone at φ={phi}, n={n}");
                prev = v;
            }
            // Exact-integer ranks: φ·n = k must select rank k (1-based),
            // never k+1, even when the fp product lands one ulp high.
            for k in 1..=n {
                let phi = k as f64 / n as f64;
                assert_eq!(
                    percentile(&sorted, phi),
                    k as f64,
                    "φ={phi} n={n} should be rank {k}"
                );
            }
        }
    }

    #[test]
    fn unsorted_input_is_handled() {
        let s = ErrorStats::from_values(&[5.0, 1.0, 3.0]);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.p50, 3.0);
    }

    #[test]
    fn from_u64_matches_floats() {
        let a = ErrorStats::from_u64(&[1, 2, 3]);
        let b = ErrorStats::from_values(&[1.0, 2.0, 3.0]);
        assert_eq!(a, b);
    }

    #[test]
    fn bound_check_verdicts() {
        let pass = BoundCheck::from_u64(&[0, 3, 5], 5.0);
        assert!(pass.ok());
        assert_eq!(pass.stats.max, 5.0);
        let fail = BoundCheck::from_u64(&[0, 3, 6], 5.0);
        assert!(!fail.ok());
        // Vacuous pass on no observations.
        assert!(BoundCheck::new(&[], 0.0).ok());
        let j = pass.to_json().to_string();
        assert!(j.contains("\"ok\":true"), "{j}");
    }

    #[test]
    fn relative_error_cases() {
        assert_eq!(relative_error(11.0, 10.0, 100.0), 0.01);
        assert_eq!(relative_error(0.0, 0.0, 0.0), 0.0);
        assert!(relative_error(1.0, 0.0, 0.0).is_infinite());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_observations_are_rejected() {
        let _ = ErrorStats::from_values(&[1.0, f64::NAN]);
    }
}

//! Bounded lock-free queue for the shard ingest path.
//!
//! [`Ring`] replaces `std::sync::mpsc::sync_channel` on the engine's
//! per-shard queues. The steady-state enqueue is a couple of atomic
//! operations on a fixed slot array (Vyukov's bounded MPMC design: every
//! slot carries a sequence stamp that encodes whose turn it is), so an
//! ingest caller never takes a lock and never allocates to hand a batch
//! to a worker. Mutex/condvar parking exists only on the *slow* paths —
//! a producer blocking on a full ring, the consumer idling on an empty
//! one — and is never touched while the queue is making progress.
//!
//! Unlike a channel, a ring has an explicit lifecycle, which is what the
//! engine's failure model needs:
//!
//! * **Open** — normal operation.
//! * **Draining** ([`Ring::close`]) — shutdown: producers are refused,
//!   the consumer drains every queued item (including pushes that were
//!   already in flight when the state flipped — see `pop_wait`) and then
//!   sees `None`. This is what makes clean shutdown lossless.
//! * **Dead** ([`Ring::mark_dead`]) — the consumer died. Producers are
//!   refused so they can reroute, but queued items are *retained*: a
//!   respawned worker calls [`Ring::revive`] and picks up exactly where
//!   its predecessor stopped, so batches that were acked into the queue
//!   survive a worker death instead of being dropped with the channel.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicU32, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Producers and consumer both make progress.
const OPEN: u8 = 0;
/// No new pushes; consumer drains what is queued, then exits.
const DRAINING: u8 = 1;
/// The consumer died; queued items are held for a possible revive.
const DEAD: u8 = 2;

/// Safety-net park timeout: wakeups are signalled explicitly, the
/// timeout only bounds the cost of a theoretical missed signal.
const PARK: Duration = Duration::from_millis(1);

/// Why a push did not enqueue; the item is handed back in both cases.
#[derive(Debug)]
pub enum PushError<T> {
    /// The ring is at capacity (backpressure).
    Full(T),
    /// The ring is draining or its consumer is dead.
    Closed(T),
}

struct Slot<T> {
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// Bounded lock-free MPMC queue with an explicit Open/Draining/Dead
/// lifecycle. Capacity is rounded up to a power of two.
pub struct Ring<T> {
    buf: Box<[Slot<T>]>,
    mask: usize,
    enqueue_pos: AtomicUsize,
    dequeue_pos: AtomicUsize,
    state: AtomicU8,
    /// Counts updated only while holding `park`; read lock-free on the
    /// fast path to decide whether a notify is needed at all.
    prod_waiting: AtomicU32,
    cons_waiting: AtomicU32,
    park: Mutex<()>,
    not_full: Condvar,
    not_empty: Condvar,
}

// SAFETY: slot values are handed between threads through the seq-stamp
// protocol (Release publish, Acquire claim); each value is touched by
// exactly one thread at a time.
unsafe impl<T: Send> Sync for Ring<T> {}
unsafe impl<T: Send> Send for Ring<T> {}

impl<T> Ring<T> {
    /// A ring holding at least `capacity` items (rounded up to a power
    /// of two, minimum 2).
    ///
    /// The minimum is 2, not 1: the seq-stamp protocol tells "free for
    /// position `p`" from "filled at position `p − cap`" by the slot's
    /// stamp, and with a single slot those two states collide — a second
    /// push would overwrite an unconsumed item.
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        Ring {
            buf: (0..cap)
                .map(|i| Slot {
                    seq: AtomicUsize::new(i),
                    value: UnsafeCell::new(MaybeUninit::uninit()),
                })
                .collect(),
            mask: cap - 1,
            enqueue_pos: AtomicUsize::new(0),
            dequeue_pos: AtomicUsize::new(0),
            state: AtomicU8::new(OPEN),
            prod_waiting: AtomicU32::new(0),
            cons_waiting: AtomicU32::new(0),
            park: Mutex::new(()),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    /// Usable capacity.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Approximate number of queued items (racy by nature).
    pub fn len(&self) -> usize {
        let tail = self.enqueue_pos.load(Ordering::Acquire);
        let head = self.dequeue_pos.load(Ordering::Acquire);
        tail.saturating_sub(head)
    }

    /// True when no items are queued (approximate, like [`Ring::len`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-blocking enqueue: a couple of atomics in the common case.
    pub fn try_push(&self, value: T) -> Result<(), PushError<T>> {
        let result = self.try_push_core(value);
        if result.is_ok() {
            self.wake_consumer();
        }
        result
    }

    /// The enqueue protocol without the consumer wakeup. The under-lock
    /// double-checks in [`Ring::push`] must use this: they already hold
    /// `park`, and the wake helpers take `park` — waking through
    /// [`Ring::try_push`] there would self-deadlock on the re-lock.
    fn try_push_core(&self, value: T) -> Result<(), PushError<T>> {
        if self.state.load(Ordering::Acquire) != OPEN {
            return Err(PushError::Closed(value));
        }
        let mut pos = self.enqueue_pos.load(Ordering::Relaxed);
        loop {
            let slot = &self.buf[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let diff = seq as isize - pos as isize;
            if diff == 0 {
                match self.enqueue_pos.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS claimed this slot for us alone.
                        unsafe { (*slot.value.get()).write(value) };
                        slot.seq.store(pos.wrapping_add(1), Ordering::Release);
                        return Ok(());
                    }
                    Err(actual) => pos = actual,
                }
            } else if diff < 0 {
                return Err(PushError::Full(value));
            } else {
                pos = self.enqueue_pos.load(Ordering::Relaxed);
            }
        }
    }

    /// Blocking enqueue: parks while the ring is full, returns the item
    /// as `Err` once the ring stops accepting (draining or dead).
    pub fn push(&self, value: T) -> Result<(), T> {
        let mut value = value;
        loop {
            match self.try_push(value) {
                Ok(()) => return Ok(()),
                Err(PushError::Closed(v)) => return Err(v),
                Err(PushError::Full(v)) => value = v,
            }
            // Slow path: register as a waiting producer, re-check under
            // the park lock (the consumer notifies only after seeing the
            // waiting count), then sleep until a pop frees a slot. The
            // re-check must not go through `try_push`: its wakeup helper
            // takes `park`, which this thread already holds.
            let guard = self.park.lock().unwrap_or_else(|e| e.into_inner());
            self.prod_waiting.fetch_add(1, Ordering::SeqCst);
            fence(Ordering::SeqCst);
            match self.try_push_core(value) {
                Ok(()) => {
                    self.prod_waiting.fetch_sub(1, Ordering::SeqCst);
                    // Already holding `park`: notify the consumer directly.
                    self.not_empty.notify_all();
                    return Ok(());
                }
                Err(PushError::Closed(v)) => {
                    self.prod_waiting.fetch_sub(1, Ordering::SeqCst);
                    return Err(v);
                }
                Err(PushError::Full(v)) => value = v,
            }
            let _unused = self
                .not_full
                .wait_timeout(guard, PARK)
                .unwrap_or_else(|e| e.into_inner());
            self.prod_waiting.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Non-blocking dequeue.
    pub fn try_pop(&self) -> Option<T> {
        let value = self.try_pop_core();
        if value.is_some() {
            self.wake_producers();
        }
        value
    }

    /// The dequeue protocol without the producer wakeup; see
    /// [`Ring::try_push_core`] for why the under-lock double-check in
    /// [`Ring::pop_wait`] needs it.
    fn try_pop_core(&self) -> Option<T> {
        let mut pos = self.dequeue_pos.load(Ordering::Relaxed);
        loop {
            let slot = &self.buf[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let diff = seq as isize - pos.wrapping_add(1) as isize;
            if diff == 0 {
                match self.dequeue_pos.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS claimed this slot; the producer
                        // published the value before setting seq.
                        let value = unsafe { (*slot.value.get()).assume_init_read() };
                        slot.seq
                            .store(pos.wrapping_add(self.mask + 1), Ordering::Release);
                        return Some(value);
                    }
                    Err(actual) => pos = actual,
                }
            } else if diff < 0 {
                return None;
            } else {
                pos = self.dequeue_pos.load(Ordering::Relaxed);
            }
        }
    }

    /// Blocking dequeue for the consumer. Returns `None` only once the
    /// ring has left the Open state **and** every in-flight push has
    /// landed and been drained — a producer that won the enqueue race
    /// just before `close()` is still honored, which is what makes
    /// engine shutdown lossless for acked batches.
    pub fn pop_wait(&self) -> Option<T> {
        loop {
            if let Some(v) = self.try_pop() {
                return Some(v);
            }
            if self.state.load(Ordering::Acquire) != OPEN {
                if let Some(v) = self.try_pop() {
                    return Some(v);
                }
                // An in-flight push has claimed a slot but not yet
                // published it when enqueue_pos is ahead of dequeue_pos.
                let tail = self.enqueue_pos.load(Ordering::SeqCst);
                let head = self.dequeue_pos.load(Ordering::SeqCst);
                if tail == head {
                    return None;
                }
                std::thread::yield_now();
                continue;
            }
            let guard = self.park.lock().unwrap_or_else(|e| e.into_inner());
            self.cons_waiting.fetch_add(1, Ordering::SeqCst);
            fence(Ordering::SeqCst);
            if let Some(v) = self.try_pop_core() {
                self.cons_waiting.fetch_sub(1, Ordering::SeqCst);
                // Already holding `park`: notify producers directly.
                self.not_full.notify_all();
                return Some(v);
            }
            if self.state.load(Ordering::SeqCst) == OPEN {
                let _unused = self
                    .not_empty
                    .wait_timeout(guard, PARK)
                    .unwrap_or_else(|e| e.into_inner());
            }
            self.cons_waiting.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Begin draining: refuse new pushes, let the consumer empty the
    /// ring and exit. A dead ring stays dead.
    pub fn close(&self) {
        let _ = self
            .state
            .compare_exchange(OPEN, DRAINING, Ordering::AcqRel, Ordering::Acquire);
        self.wake_everyone();
    }

    /// Record that the consumer died. Queued items are retained for
    /// [`Ring::revive`]; producers get [`PushError::Closed`] and reroute.
    pub fn mark_dead(&self) {
        self.state.store(DEAD, Ordering::Release);
        self.wake_everyone();
    }

    /// Reopen a dead ring for a respawned consumer. Returns false if the
    /// ring was not dead (e.g. shutdown already started draining it).
    pub fn revive(&self) -> bool {
        self.state
            .compare_exchange(DEAD, OPEN, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// True once the consumer has been marked dead.
    pub fn is_dead(&self) -> bool {
        self.state.load(Ordering::Acquire) == DEAD
    }

    /// True while pushes are accepted.
    pub fn is_open(&self) -> bool {
        self.state.load(Ordering::Acquire) == OPEN
    }

    fn wake_consumer(&self) {
        fence(Ordering::SeqCst);
        if self.cons_waiting.load(Ordering::SeqCst) > 0 {
            let _guard = self.park.lock().unwrap_or_else(|e| e.into_inner());
            self.not_empty.notify_all();
        }
    }

    fn wake_producers(&self) {
        fence(Ordering::SeqCst);
        if self.prod_waiting.load(Ordering::SeqCst) > 0 {
            let _guard = self.park.lock().unwrap_or_else(|e| e.into_inner());
            self.not_full.notify_all();
        }
    }

    fn wake_everyone(&self) {
        let _guard = self.park.lock().unwrap_or_else(|e| e.into_inner());
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

impl<T> Drop for Ring<T> {
    fn drop(&mut self) {
        while self.try_pop().is_some() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_single_thread() {
        let ring = Ring::with_capacity(4);
        for i in 0..4 {
            ring.try_push(i).map_err(|_| "full").unwrap();
        }
        assert!(matches!(ring.try_push(9), Err(PushError::Full(9))));
        for i in 0..4 {
            assert_eq!(ring.try_pop(), Some(i));
        }
        assert_eq!(ring.try_pop(), None);
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        let ring: Ring<u8> = Ring::with_capacity(5);
        assert_eq!(ring.capacity(), 8);
        let ring: Ring<u8> = Ring::with_capacity(1);
        assert_eq!(ring.capacity(), 2, "one slot cannot disambiguate laps");
    }

    #[test]
    fn close_refuses_pushes_but_drains_queued_items() {
        let ring = Ring::with_capacity(8);
        ring.try_push(1u64).map_err(|_| "full").unwrap();
        ring.try_push(2u64).map_err(|_| "full").unwrap();
        ring.close();
        assert!(matches!(ring.try_push(3), Err(PushError::Closed(3))));
        assert_eq!(ring.pop_wait(), Some(1));
        assert_eq!(ring.pop_wait(), Some(2));
        assert_eq!(ring.pop_wait(), None);
    }

    #[test]
    fn dead_ring_retains_items_until_revived() {
        let ring = Ring::with_capacity(8);
        ring.try_push(7u64).map_err(|_| "full").unwrap();
        ring.mark_dead();
        assert!(ring.is_dead());
        assert!(matches!(ring.try_push(8), Err(PushError::Closed(8))));
        assert!(ring.revive());
        assert!(!ring.revive(), "second revive is a no-op");
        ring.try_push(8u64).map_err(|_| "full").unwrap();
        assert_eq!(ring.try_pop(), Some(7), "pre-death item survived");
        assert_eq!(ring.try_pop(), Some(8));
    }

    #[test]
    fn blocking_push_waits_for_consumer_space() {
        let ring = Arc::new(Ring::with_capacity(2));
        ring.try_push(0u64).map_err(|_| "full").unwrap();
        ring.try_push(1u64).map_err(|_| "full").unwrap();
        let producer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || ring.push(2u64))
        };
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(ring.try_pop(), Some(0));
        producer.join().unwrap().unwrap();
        assert_eq!(ring.try_pop(), Some(1));
        assert_eq!(ring.try_pop(), Some(2));
    }

    #[test]
    fn close_unblocks_a_parked_producer() {
        let ring = Arc::new(Ring::with_capacity(2));
        ring.try_push(0u64).map_err(|_| "full").unwrap();
        ring.try_push(1u64).map_err(|_| "full").unwrap();
        let producer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || ring.push(2u64))
        };
        std::thread::sleep(Duration::from_millis(20));
        ring.close();
        assert_eq!(producer.join().unwrap(), Err(2), "item handed back");
    }

    #[test]
    fn mpmc_stress_preserves_every_item_exactly_once() {
        const PRODUCERS: u64 = 4;
        const PER_PRODUCER: u64 = 5_000;
        let ring = Arc::new(Ring::with_capacity(16));
        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..PER_PRODUCER {
                        ring.push(p * PER_PRODUCER + i).unwrap();
                    }
                })
            })
            .collect();
        let consumer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                let mut seen = vec![false; (PRODUCERS * PER_PRODUCER) as usize];
                while let Some(v) = ring.pop_wait() {
                    assert!(!seen[v as usize], "duplicate delivery of {v}");
                    seen[v as usize] = true;
                }
                seen.iter().filter(|&&s| s).count()
            })
        };
        for p in producers {
            p.join().unwrap();
        }
        ring.close();
        let delivered = consumer.join().unwrap();
        assert_eq!(delivered as u64, PRODUCERS * PER_PRODUCER);
    }

    #[test]
    fn tiny_ring_park_paths_never_self_deadlock() {
        // Regression: the under-lock double-checks in `push`/`pop_wait`
        // used to wake the other side through `try_push`/`try_pop`, whose
        // wake helpers re-take the `park` mutex the thread already holds
        // — a self-deadlock that needed a full ring and a racing drain. A
        // capacity-2 ring keeps both slow paths hot enough to hit it.
        const ITEMS: u64 = 20_000;
        let ring = Arc::new(Ring::with_capacity(2));
        let producer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                for i in 0..ITEMS {
                    ring.push(i).unwrap();
                }
            })
        };
        let consumer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                let mut next = 0u64;
                while let Some(v) = ring.pop_wait() {
                    assert_eq!(v, next, "single-producer FIFO order broken");
                    next += 1;
                }
                next
            })
        };
        producer.join().unwrap();
        ring.close();
        assert_eq!(consumer.join().unwrap(), ITEMS);
    }

    #[test]
    fn drop_releases_queued_items() {
        let ring = Ring::with_capacity(4);
        let tracked = Arc::new(());
        ring.try_push(Arc::clone(&tracked)).map_err(|_| "").unwrap();
        ring.try_push(Arc::clone(&tracked)).map_err(|_| "").unwrap();
        assert_eq!(Arc::strong_count(&tracked), 3);
        drop(ring);
        assert_eq!(Arc::strong_count(&tracked), 1);
    }
}

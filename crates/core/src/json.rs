//! Minimal JSON *encoder* (no parser).
//!
//! Two consumers need JSON output only: `ms-bench` persists experiment
//! tables as human-diffable records, and `ms-netsim` prices messages under
//! a text encoding to compare against the binary codec in [`crate::wire`].
//! Everything that must be read back (CLI envelopes, the service protocol)
//! uses the binary codec, so no parser is needed.
//!
//! The encoding matches the conventional JSON layout: string keys, `\uXXXX`
//! escapes for control characters, shortest-roundtrip float formatting with
//! a forced decimal point, and non-finite floats encoded as `null`.

/// A JSON value tree, built by [`ToJson`] implementations.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Unsigned integer (kept exact; never goes through f64).
    U64(u64),
    /// Signed integer (kept exact).
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered fields.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj<const N: usize>(fields: [(&str, Json); N]) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Build an array from anything serializable.
    pub fn arr<T: ToJson>(items: impl IntoIterator<Item = T>) -> Json {
        Json::Arr(items.into_iter().map(|v| v.to_json()).collect())
    }

    /// Pretty rendering with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    /// Compact rendering (no whitespace); also available via `Display`
    /// and `ToString`.
    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => out.push_str(&v.to_string()),
            Json::I64(v) => out.push_str(&v.to_string()),
            Json::F64(v) => write_f64(*v, out),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    write_escaped(key, out);
                    out.push_str(": ");
                    value.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_f64(v: f64, out: &mut String) {
    if !v.is_finite() {
        // JSON has no NaN/Infinity.
        out.push_str("null");
        return;
    }
    let abs = v.abs();
    let text = if abs != 0.0 && !(1e-5..1e17).contains(&abs) {
        format!("{v:e}")
    } else {
        format!("{v}")
    };
    out.push_str(&text);
    if !text.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A value with a JSON rendering (encode-only).
pub trait ToJson {
    /// Build the JSON value tree.
    fn to_json(&self) -> Json;

    /// Size of the compact JSON encoding in bytes (for byte accounting).
    fn json_len(&self) -> usize {
        self.to_json().to_string().len()
    }
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        Json::U64(*self)
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::U64(*self as u64)
    }
}

impl ToJson for i64 {
    fn to_json(&self) -> Json {
        Json::I64(*self)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::F64(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            None => Json::Null,
            Some(v) => v.to_json(),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for &T {
    fn to_json(&self) -> Json {
        (*self).to_json()
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let v = Json::obj([
            ("id", Json::Str("t1".into())),
            ("rows", Json::Arr(vec![Json::U64(1), Json::U64(2)])),
            ("ok", Json::Bool(true)),
            ("missing", Json::Null),
        ]);
        assert_eq!(
            v.to_string(),
            "{\"id\":\"t1\",\"rows\":[1,2],\"ok\":true,\"missing\":null}"
        );
    }

    #[test]
    fn pretty_rendering_uses_colon_space() {
        let v = Json::obj([("id", Json::Str("t9".into()))]);
        assert_eq!(v.to_string_pretty(), "{\n  \"id\": \"t9\"\n}");
    }

    #[test]
    fn floats_format_like_json() {
        assert_eq!(Json::F64(1.0).to_string(), "1.0");
        assert_eq!(Json::F64(0.25).to_string(), "0.25");
        assert_eq!(Json::F64(f64::NAN).to_string(), "null");
        assert_eq!(Json::F64(-3.5e300).to_string(), "-3.5e300");
    }

    #[test]
    fn strings_escape_controls() {
        assert_eq!(
            Json::Str("a\"b\\c\n\u{1}".into()).to_string(),
            "\"a\\\"b\\\\c\\n\\u0001\""
        );
    }

    #[test]
    fn empty_containers_stay_compact_in_pretty_mode() {
        assert_eq!(Json::Arr(vec![]).to_string_pretty(), "[]");
        assert_eq!(Json::Obj(vec![]).to_string_pretty(), "{}");
    }
}

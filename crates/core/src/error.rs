//! Typed errors for merge operations and the aggregation service.
//!
//! Merging is only defined between summaries built with the same parameters
//! (same ε / number of counters / buffer size / reference frame). Rather than
//! silently producing a summary with an undefined guarantee, every merge in
//! the workspace validates its inputs and returns a [`MergeError`].
//!
//! [`ServiceError`] is the failure vocabulary of the sharded aggregation
//! service (`ms-service`) and the fault-injection harness (`ms-faultsim`):
//! every failure path that used to be an `unwrap()`/`panic!` — engine
//! shutdown races, dead shard threads, saturated queues, malformed wire
//! frames, socket timeouts — is a typed, matchable variant instead, so the
//! harness can assert *which* failure occurred, not just that something
//! went wrong.

use std::fmt;
use std::io;

use crate::wire::WireError;

/// Result alias used by fallible merge operations throughout the workspace.
pub type Result<T, E = MergeError> = std::result::Result<T, E>;

/// Why two summaries could not be merged.
#[derive(Debug, Clone, PartialEq)]
pub enum MergeError {
    /// The two summaries were built with different capacity parameters
    /// (number of counters, buffer size, sketch width/depth, ...).
    CapacityMismatch {
        /// Human-readable name of the mismatched parameter.
        parameter: &'static str,
        /// Value held by the left summary.
        left: usize,
        /// Value held by the right summary.
        right: usize,
    },
    /// The two summaries were built with different error parameters ε.
    EpsilonMismatch {
        /// ε of the left summary.
        left: f64,
        /// ε of the right summary.
        right: f64,
    },
    /// The two randomized summaries use different hash seeds and are
    /// therefore not in the same linear family (Count-Min, Count-Sketch).
    SeedMismatch {
        /// Seed of the left summary.
        left: u64,
        /// Seed of the right summary.
        right: u64,
    },
    /// Restricted mergeability precondition violated (ε-kernels: the two
    /// summaries must share a reference frame).
    FrameMismatch,
    /// Any other structural incompatibility.
    Incompatible(&'static str),
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::CapacityMismatch {
                parameter,
                left,
                right,
            } => write!(
                f,
                "cannot merge: {parameter} differs between summaries ({left} vs {right})"
            ),
            MergeError::EpsilonMismatch { left, right } => {
                write!(f, "cannot merge: epsilon differs ({left} vs {right})")
            }
            MergeError::SeedMismatch { left, right } => write!(
                f,
                "cannot merge: hash seeds differ ({left:#x} vs {right:#x}); \
                 linear sketches must share their hash family"
            ),
            MergeError::FrameMismatch => write!(
                f,
                "cannot merge: ε-kernels were built in different reference frames \
                 (restricted mergeability requires a common frame)"
            ),
            MergeError::Incompatible(why) => write!(f, "cannot merge: {why}"),
        }
    }
}

impl std::error::Error for MergeError {}

/// Why a service operation (ingest, flush, query, RPC) failed.
///
/// Transient variants ([`ServiceError::is_transient`]) are worth retrying
/// with backoff; the rest are definitive and retrying cannot help.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The engine has been shut down; no further ingest or flush possible.
    Shutdown,
    /// Every ingest shard is dead and respawn is disabled or failing.
    AllShardsLost,
    /// A non-blocking ingest found the target queue full (backpressure).
    Backpressure,
    /// The configuration failed validation.
    Config(&'static str),
    /// An OS-level failure (spawn, bind, socket I/O). The kind is preserved
    /// so callers can distinguish EOF from refused connections etc.
    Io {
        /// The `std::io::ErrorKind` of the underlying failure.
        kind: io::ErrorKind,
        /// Human-readable detail.
        detail: String,
    },
    /// A request or response did not decode.
    Wire(WireError),
    /// A request did not complete within its deadline.
    Timeout {
        /// The deadline that expired, in milliseconds.
        millis: u64,
    },
    /// The peer answered with a protocol-level error message.
    Protocol(String),
    /// The server (or an engine admission check) shed the request under
    /// overload instead of queueing doomed work. Retry after the hinted
    /// delay — sooner just feeds the storm.
    Overloaded {
        /// Suggested client wait before retrying, in microseconds.
        retry_after_micros: u64,
    },
}

impl ServiceError {
    /// True for failures that a retry with backoff may cure (I/O hiccups
    /// and timeouts); false for definitive ones (shutdown, bad config,
    /// malformed data, peer-reported errors).
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            ServiceError::Io { .. }
                | ServiceError::Timeout { .. }
                | ServiceError::Backpressure
                | ServiceError::Overloaded { .. }
        )
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Shutdown => write!(f, "engine is shut down"),
            ServiceError::AllShardsLost => write!(f, "all ingest shards are dead"),
            ServiceError::Backpressure => write!(f, "shard queue full (backpressure)"),
            ServiceError::Config(why) => write!(f, "invalid configuration: {why}"),
            ServiceError::Io { kind, detail } => write!(f, "i/o failure ({kind:?}): {detail}"),
            ServiceError::Wire(e) => write!(f, "wire failure: {e}"),
            ServiceError::Timeout { millis } => write!(f, "request timed out after {millis}ms"),
            ServiceError::Protocol(msg) => write!(f, "peer error: {msg}"),
            ServiceError::Overloaded { retry_after_micros } => write!(
                f,
                "request shed under overload (retry after {retry_after_micros}us)"
            ),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<WireError> for ServiceError {
    fn from(e: WireError) -> Self {
        ServiceError::Wire(e)
    }
}

impl From<io::Error> for ServiceError {
    fn from(e: io::Error) -> Self {
        ServiceError::Io {
            kind: e.kind(),
            detail: e.to_string(),
        }
    }
}

/// Check that two capacity parameters match, returning a typed error if not.
pub fn ensure_same_capacity(parameter: &'static str, left: usize, right: usize) -> Result<()> {
    if left == right {
        Ok(())
    } else {
        Err(MergeError::CapacityMismatch {
            parameter,
            left,
            right,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_capacity_mismatch() {
        let e = MergeError::CapacityMismatch {
            parameter: "counters",
            left: 8,
            right: 16,
        };
        let s = e.to_string();
        assert!(s.contains("counters"), "{s}");
        assert!(s.contains('8') && s.contains("16"), "{s}");
    }

    #[test]
    fn display_epsilon_mismatch() {
        let e = MergeError::EpsilonMismatch {
            left: 0.1,
            right: 0.01,
        };
        assert!(e.to_string().contains("0.1"));
    }

    #[test]
    fn display_seed_mismatch_is_hex() {
        let e = MergeError::SeedMismatch {
            left: 255,
            right: 0,
        };
        assert!(e.to_string().contains("0xff"));
    }

    #[test]
    fn ensure_same_capacity_accepts_equal() {
        assert!(ensure_same_capacity("k", 5, 5).is_ok());
    }

    #[test]
    fn ensure_same_capacity_rejects_unequal() {
        let err = ensure_same_capacity("k", 5, 6).unwrap_err();
        assert_eq!(
            err,
            MergeError::CapacityMismatch {
                parameter: "k",
                left: 5,
                right: 6
            }
        );
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(MergeError::FrameMismatch);
        assert!(e.to_string().contains("reference frame"));
    }

    #[test]
    fn service_error_transience() {
        assert!(ServiceError::Timeout { millis: 10 }.is_transient());
        assert!(ServiceError::Backpressure.is_transient());
        assert!(
            ServiceError::from(io::Error::new(io::ErrorKind::ConnectionReset, "rst"))
                .is_transient()
        );
        assert!(!ServiceError::Shutdown.is_transient());
        assert!(!ServiceError::AllShardsLost.is_transient());
        assert!(!ServiceError::Wire(WireError::Truncated).is_transient());
        assert!(!ServiceError::Protocol("nope".into()).is_transient());
    }

    #[test]
    fn service_error_display_and_conversions() {
        let e = ServiceError::from(WireError::BadTag(9));
        assert!(e.to_string().contains("tag 9"), "{e}");
        let io_err = io::Error::new(io::ErrorKind::UnexpectedEof, "gone");
        let e = ServiceError::from(io_err);
        assert!(matches!(
            e,
            ServiceError::Io {
                kind: io::ErrorKind::UnexpectedEof,
                ..
            }
        ));
        assert!(ServiceError::Timeout { millis: 250 }
            .to_string()
            .contains("250ms"));
        let boxed: Box<dyn std::error::Error> = Box::new(ServiceError::AllShardsLost);
        assert!(boxed.to_string().contains("shards"));
    }
}

//! Typed errors for merge operations.
//!
//! Merging is only defined between summaries built with the same parameters
//! (same ε / number of counters / buffer size / reference frame). Rather than
//! silently producing a summary with an undefined guarantee, every merge in
//! the workspace validates its inputs and returns a [`MergeError`].

use std::fmt;

/// Result alias used by fallible merge operations throughout the workspace.
pub type Result<T, E = MergeError> = std::result::Result<T, E>;

/// Why two summaries could not be merged.
#[derive(Debug, Clone, PartialEq)]
pub enum MergeError {
    /// The two summaries were built with different capacity parameters
    /// (number of counters, buffer size, sketch width/depth, ...).
    CapacityMismatch {
        /// Human-readable name of the mismatched parameter.
        parameter: &'static str,
        /// Value held by the left summary.
        left: usize,
        /// Value held by the right summary.
        right: usize,
    },
    /// The two summaries were built with different error parameters ε.
    EpsilonMismatch {
        /// ε of the left summary.
        left: f64,
        /// ε of the right summary.
        right: f64,
    },
    /// The two randomized summaries use different hash seeds and are
    /// therefore not in the same linear family (Count-Min, Count-Sketch).
    SeedMismatch {
        /// Seed of the left summary.
        left: u64,
        /// Seed of the right summary.
        right: u64,
    },
    /// Restricted mergeability precondition violated (ε-kernels: the two
    /// summaries must share a reference frame).
    FrameMismatch,
    /// Any other structural incompatibility.
    Incompatible(&'static str),
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::CapacityMismatch {
                parameter,
                left,
                right,
            } => write!(
                f,
                "cannot merge: {parameter} differs between summaries ({left} vs {right})"
            ),
            MergeError::EpsilonMismatch { left, right } => {
                write!(f, "cannot merge: epsilon differs ({left} vs {right})")
            }
            MergeError::SeedMismatch { left, right } => write!(
                f,
                "cannot merge: hash seeds differ ({left:#x} vs {right:#x}); \
                 linear sketches must share their hash family"
            ),
            MergeError::FrameMismatch => write!(
                f,
                "cannot merge: ε-kernels were built in different reference frames \
                 (restricted mergeability requires a common frame)"
            ),
            MergeError::Incompatible(why) => write!(f, "cannot merge: {why}"),
        }
    }
}

impl std::error::Error for MergeError {}

/// Check that two capacity parameters match, returning a typed error if not.
pub fn ensure_same_capacity(parameter: &'static str, left: usize, right: usize) -> Result<()> {
    if left == right {
        Ok(())
    } else {
        Err(MergeError::CapacityMismatch {
            parameter,
            left,
            right,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_capacity_mismatch() {
        let e = MergeError::CapacityMismatch {
            parameter: "counters",
            left: 8,
            right: 16,
        };
        let s = e.to_string();
        assert!(s.contains("counters"), "{s}");
        assert!(s.contains('8') && s.contains("16"), "{s}");
    }

    #[test]
    fn display_epsilon_mismatch() {
        let e = MergeError::EpsilonMismatch {
            left: 0.1,
            right: 0.01,
        };
        assert!(e.to_string().contains("0.1"));
    }

    #[test]
    fn display_seed_mismatch_is_hex() {
        let e = MergeError::SeedMismatch {
            left: 255,
            right: 0,
        };
        assert!(e.to_string().contains("0xff"));
    }

    #[test]
    fn ensure_same_capacity_accepts_equal() {
        assert!(ensure_same_capacity("k", 5, 5).is_ok());
    }

    #[test]
    fn ensure_same_capacity_rejects_unequal() {
        let err = ensure_same_capacity("k", 5, 6).unwrap_err();
        assert_eq!(
            err,
            MergeError::CapacityMismatch {
                parameter: "k",
                left: 5,
                right: 6
            }
        );
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(MergeError::FrameMismatch);
        assert!(e.to_string().contains("reference frame"));
    }
}

//! Deterministic pseudo-random number generation.
//!
//! Every randomized component in the workspace (randomized same-weight
//! quantile merges, halving colorings, workload generators) draws from this
//! generator so that experiments are reproducible bit-for-bit from an
//! explicit seed. The generator is xoshiro256** seeded through splitmix64 —
//! the standard, well-tested construction — implemented locally so the core
//! crate stays dependency-free (the `rand` crate is used only by the
//! workload crate, behind explicit seeds).

/// splitmix64 step: used for seeding and as a cheap stateless mixer.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// xoshiro256** generator with explicit seeding.
///
/// Summaries that need randomness own one of these, created from a caller
/// seed; merging two summaries mixes both generators' states so a merged
/// summary remains deterministic given the two input seeds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng64 {
    s: [u64; 4],
}

impl crate::wire::Wire for Rng64 {
    fn encode_into(&self, out: &mut Vec<u8>) {
        for lane in &self.s {
            lane.encode_into(out);
        }
    }
    fn decode_from(r: &mut crate::wire::WireReader<'_>) -> Result<Self, crate::wire::WireError> {
        let mut s = [0u64; 4];
        for lane in &mut s {
            *lane = r.varint()?;
        }
        Ok(Rng64 { s })
    }
}

impl Rng64 {
    /// Create a generator from a 64-bit seed (expanded via splitmix64).
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng64 { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`. `bound` must be nonzero.
    ///
    /// Uses Lemire's multiply-shift rejection method (unbiased).
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "below(0) is meaningless");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `usize` in `[0, bound)`.
    #[inline]
    pub fn below_usize(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Fair coin flip.
    #[inline]
    pub fn coin(&mut self) -> bool {
        // Top bit of the raw output.
        self.next_u64() >> 63 == 1
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial that succeeds with probability `p` (clamped to [0,1]).
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Derive an independent child generator (for splitting randomness
    /// across sites or merge nodes).
    pub fn fork(&mut self) -> Rng64 {
        Rng64::new(self.next_u64())
    }

    /// Mix another generator's state into this one. Used when merging two
    /// randomized summaries: the merged summary's future coin flips depend
    /// deterministically on both inputs.
    pub fn absorb(&mut self, other: &Rng64) {
        let mut sm = other.s[0] ^ other.s[1] ^ other.s[2] ^ other.s[3];
        for lane in &mut self.s {
            *lane ^= splitmix64(&mut sm);
        }
        // Never allow the all-zero state (a xoshiro fixed point).
        if self.s == [0, 0, 0, 0] {
            *self = Rng64::new(0x5eed_5eed_5eed_5eed);
        }
    }

    /// Fisher-Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below_usize(i + 1);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = Rng64::new(7);
        let mut b = Rng64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng64::new(1);
        let mut b = Rng64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = Rng64::new(3);
        for bound in [1u64, 2, 3, 7, 100, 1 << 40] {
            for _ in 0..200 {
                assert!(r.below(bound) < bound);
            }
        }
    }

    #[test]
    fn below_one_is_always_zero() {
        let mut r = Rng64::new(4);
        for _ in 0..50 {
            assert_eq!(r.below(1), 0);
        }
    }

    #[test]
    fn coin_is_roughly_fair() {
        let mut r = Rng64::new(5);
        let heads = (0..10_000).filter(|_| r.coin()).count();
        assert!((4600..5400).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng64::new(6);
        for _ in 0..1000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut r = Rng64::new(7);
        let mean: f64 = (0..10_000).map(|_| r.f64()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn fork_produces_independent_stream() {
        let mut parent = Rng64::new(8);
        let mut child = parent.fork();
        // The child must not replay the parent's stream.
        let p: Vec<u64> = (0..8).map(|_| parent.next_u64()).collect();
        let c: Vec<u64> = (0..8).map(|_| child.next_u64()).collect();
        assert_ne!(p, c);
    }

    #[test]
    fn absorb_is_deterministic_and_changes_stream() {
        let mut a1 = Rng64::new(9);
        let mut a2 = Rng64::new(9);
        let b = Rng64::new(10);
        a1.absorb(&b);
        a2.absorb(&b);
        assert_eq!(a1.next_u64(), a2.next_u64());

        let mut plain = Rng64::new(9);
        let mut absorbed = Rng64::new(9);
        absorbed.absorb(&b);
        assert_ne!(plain.next_u64(), absorbed.next_u64());
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng64::new(11);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle left input sorted");
    }

    #[test]
    fn bernoulli_extremes() {
        let mut r = Rng64::new(12);
        assert!(!(0..100).any(|_| r.bernoulli(0.0)));
        assert!((0..100).all(|_| r.bernoulli(1.0)));
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = Rng64::new(13);
        let mut bins = [0u32; 10];
        for _ in 0..100_000 {
            bins[r.below(10) as usize] += 1;
        }
        for &b in &bins {
            assert!((9_000..11_000).contains(&b), "bins = {bins:?}");
        }
    }
}

//! Compact binary wire codec for shipping summaries between nodes.
//!
//! The paper's model is *ship summaries, not data*: a summary built at one
//! site must travel to another site and merge there. This module is the
//! workspace's wire format — a small, versioned, length-prefixed binary
//! encoding used by the on-disk CLI envelopes, the `ms-service` TCP
//! protocol, and `ms-netsim`'s byte accounting.
//!
//! Design:
//!
//! * **Varint integers** (LEB128) for all counts and unsigned values —
//!   summaries are mostly small counters, so this is much denser than
//!   fixed-width fields and than JSON.
//! * **Zigzag varints** for signed values (Count-Sketch / AMS cells).
//! * **Fixed 8-byte little-endian bit patterns** for `f64` (exactness
//!   matters: ε parameters are compared bit-for-bit by merge guards).
//! * **Explicit framing** for files and sockets: a 2-byte magic, a u16
//!   format version, a 1-byte tag, and a u32 payload length — readers can
//!   reject foreign data, future formats, and runaway lengths before
//!   allocating.
//!
//! Derived state is *not* serialized: hash families are reconstructed from
//! `(width, depth, seed)`, lazily-built indexes are rebuilt on demand. The
//! codec therefore stays minimal and canonical for what it does encode.

use std::io::{self, Read, Write};

use crate::hash::FxHashMap;

/// Current wire-format version, embedded in every frame.
pub const WIRE_VERSION: u16 = 1;

/// Two-byte magic prefix of every frame ("mergeable summary").
pub const WIRE_MAGIC: [u8; 2] = *b"MS";

/// Refuse frames longer than this (corrupted or hostile length prefix).
pub const MAX_FRAME_LEN: u32 = 1 << 28;

/// Size of the fixed frame header: magic (2) + version (2) + tag (1) +
/// payload length (4). Fault-injection tooling uses this to aim corruption
/// at the header vs. the payload precisely.
pub const FRAME_HEADER_LEN: usize = 9;

/// Size of the durable-record trailer appended by
/// [`WireFrame::to_durable_bytes`]: total frame length (u32 LE) + CRC-32
/// of the frame bytes (u32 LE).
pub const RECORD_TRAILER_LEN: usize = 8;

/// Decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before the value was complete.
    Truncated,
    /// Input has this many bytes left over after a complete value.
    Trailing(usize),
    /// Frame did not start with [`WIRE_MAGIC`].
    BadMagic([u8; 2]),
    /// Frame was written by an incompatible format version.
    BadVersion {
        /// Version found in the frame header.
        found: u16,
        /// Version this build understands.
        expected: u16,
    },
    /// Unknown enum/tag discriminant.
    BadTag(u8),
    /// Structurally invalid payload.
    Malformed(&'static str),
    /// A durable record's CRC-32 trailer did not match its frame bytes
    /// (bit rot, a torn rewrite, or deliberate corruption).
    Checksum {
        /// CRC stored in the trailer.
        found: u32,
        /// CRC computed over the frame bytes.
        expected: u32,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "input truncated"),
            WireError::Trailing(n) => write!(f, "{n} trailing bytes after value"),
            WireError::BadMagic(m) => write!(f, "bad magic {m:?}, not a wire frame"),
            WireError::BadVersion { found, expected } => {
                write!(f, "wire version {found}, expected {expected}")
            }
            WireError::BadTag(t) => write!(f, "unknown tag {t}"),
            WireError::Malformed(what) => write!(f, "malformed payload: {what}"),
            WireError::Checksum { found, expected } => {
                write!(
                    f,
                    "crc mismatch: trailer {found:#010x}, frame {expected:#010x}"
                )
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<WireError> for io::Error {
    fn from(e: WireError) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, e)
    }
}

/// Cursor over a byte slice being decoded.
#[derive(Debug)]
pub struct WireReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Start reading at the front of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        WireReader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Offset of the next unread byte from the start of the input (file
    /// scanners use this to report where a damaged record begins).
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Next raw byte.
    pub fn byte(&mut self) -> Result<u8, WireError> {
        let b = *self.bytes.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    /// Next `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// LEB128-decode the next unsigned varint.
    pub fn varint(&mut self) -> Result<u64, WireError> {
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.byte()?;
            if shift == 63 && b > 1 {
                return Err(WireError::Malformed("varint overflows u64"));
            }
            value |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
        }
    }

    /// A length prefix, checked against what is physically left so that a
    /// corrupt length cannot trigger a huge allocation.
    pub fn length(&mut self) -> Result<usize, WireError> {
        let n = self.varint()?;
        if n > self.remaining() as u64 {
            return Err(WireError::Truncated);
        }
        Ok(n as usize)
    }

    /// Error unless every byte was consumed.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::Trailing(self.remaining()))
        }
    }
}

/// LEB128-encode `v`.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Encode a `&[u64]` exactly as `Vec<u64>::encode_into` would — varint
/// length followed by varint elements — without requiring an owned `Vec`.
/// The ingest hot path uses this to serialize a borrowed batch into a
/// reusable scratch buffer instead of cloning it first.
pub fn encode_u64_slice_into(out: &mut Vec<u8>, items: &[u64]) {
    put_varint(out, items.len() as u64);
    for &v in items {
        put_varint(out, v);
    }
}

/// Append a complete frame (header + payload) to `out`, byte-identical
/// to `WireFrame::to_bytes` but without materialising an intermediate
/// payload `Vec`. `fill` writes the payload directly after the header;
/// the length field is backpatched once the payload size is known.
/// Clients use this to serialize requests into one scratch buffer
/// reused for the life of a connection.
pub fn encode_frame_into(out: &mut Vec<u8>, tag: u8, fill: impl FnOnce(&mut Vec<u8>)) {
    out.extend_from_slice(&WIRE_MAGIC);
    out.extend_from_slice(&WIRE_VERSION.to_le_bytes());
    out.push(tag);
    let len_at = out.len();
    out.extend_from_slice(&[0u8; 4]);
    let body_start = out.len();
    fill(out);
    let len = (out.len() - body_start) as u32;
    out[len_at..len_at + 4].copy_from_slice(&len.to_le_bytes());
}

/// A value with a binary wire encoding.
///
/// Implementations come in field order, with collection lengths prefixed;
/// `decode` rejects trailing garbage. Derived state (hash families,
/// lazy indexes) is reconstructed, never shipped.
pub trait Wire: Sized {
    /// Append this value's encoding to `out`.
    fn encode_into(&self, out: &mut Vec<u8>);

    /// Decode one value from the reader.
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError>;

    /// Encode into a fresh buffer.
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// Decode a complete value: trailing bytes are an error.
    fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(bytes);
        let value = Self::decode_from(&mut r)?;
        r.finish()?;
        Ok(value)
    }

    /// Encoded size in bytes (the wire cost `ms-netsim` accounts).
    fn wire_len(&self) -> usize {
        self.encode().len()
    }
}

impl Wire for u8 {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.byte()
    }
}

impl Wire for bool {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.byte()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(WireError::BadTag(t)),
        }
    }
}

impl Wire for u16 {
    fn encode_into(&self, out: &mut Vec<u8>) {
        put_varint(out, u64::from(*self));
    }
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        u16::try_from(r.varint()?).map_err(|_| WireError::Malformed("u16 out of range"))
    }
}

impl Wire for u32 {
    fn encode_into(&self, out: &mut Vec<u8>) {
        put_varint(out, u64::from(*self));
    }
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        u32::try_from(r.varint()?).map_err(|_| WireError::Malformed("u32 out of range"))
    }
}

impl Wire for u64 {
    fn encode_into(&self, out: &mut Vec<u8>) {
        put_varint(out, *self);
    }
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.varint()
    }
}

impl Wire for usize {
    fn encode_into(&self, out: &mut Vec<u8>) {
        put_varint(out, *self as u64);
    }
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        usize::try_from(r.varint()?).map_err(|_| WireError::Malformed("usize out of range"))
    }
}

impl Wire for i64 {
    fn encode_into(&self, out: &mut Vec<u8>) {
        // Zigzag: small magnitudes of either sign stay short.
        put_varint(out, ((*self << 1) ^ (*self >> 63)) as u64);
    }
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let z = r.varint()?;
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }
}

impl Wire for f64 {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let bytes: [u8; 8] = r.take(8)?.try_into().expect("take(8) returns 8 bytes");
        Ok(f64::from_bits(u64::from_le_bytes(bytes)))
    }
}

impl Wire for String {
    fn encode_into(&self, out: &mut Vec<u8>) {
        put_varint(out, self.len() as u64);
        out.extend_from_slice(self.as_bytes());
    }
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let len = r.length()?;
        let bytes = r.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Malformed("string not UTF-8"))
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode_into(out);
            }
        }
    }
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.byte()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode_from(r)?)),
            t => Err(WireError::BadTag(t)),
        }
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        put_varint(out, self.len() as u64);
        for v in self {
            v.encode_into(out);
        }
    }
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let len = r.length()?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode_from(r)?);
        }
        Ok(out)
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.0.encode_into(out);
        self.1.encode_into(out);
    }
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok((A::decode_from(r)?, B::decode_from(r)?))
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.0.encode_into(out);
        self.1.encode_into(out);
        self.2.encode_into(out);
    }
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok((A::decode_from(r)?, B::decode_from(r)?, C::decode_from(r)?))
    }
}

impl<K, V> Wire for FxHashMap<K, V>
where
    K: Wire + Eq + std::hash::Hash,
    V: Wire,
{
    fn encode_into(&self, out: &mut Vec<u8>) {
        put_varint(out, self.len() as u64);
        for (k, v) in self {
            k.encode_into(out);
            v.encode_into(out);
        }
    }
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let len = r.length()?;
        let mut map = FxHashMap::default();
        map.reserve(len);
        for _ in 0..len {
            let k = K::decode_from(r)?;
            let v = V::decode_from(r)?;
            if map.insert(k, v).is_some() {
                return Err(WireError::Malformed("duplicate map key"));
            }
        }
        Ok(map)
    }
}

// ---------------------------------------------------------------------------
// CRC-32

/// Byte-at-a-time lookup table for CRC-32/ISO-HDLC (the zlib/Ethernet
/// polynomial, reflected 0xEDB88320), built at compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32/ISO-HDLC of `bytes` (matches zlib's `crc32`). Used by the
/// durable-record trailer; hand-rolled because the workspace carries no
/// external dependencies.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Framing

/// One tagged, length-prefixed frame (file envelope or socket message).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireFrame {
    /// Application-level tag (summary kind, request opcode, …).
    pub tag: u8,
    /// Encoded payload.
    pub payload: Vec<u8>,
}

impl WireFrame {
    /// Frame a `Wire` value under `tag`.
    pub fn from_value<T: Wire>(tag: u8, value: &T) -> Self {
        WireFrame {
            tag,
            payload: value.encode(),
        }
    }

    /// Decode the payload as `T` (complete, no trailing bytes).
    pub fn value<T: Wire>(&self) -> Result<T, WireError> {
        T::decode(&self.payload)
    }

    /// Serialize header + payload.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(FRAME_HEADER_LEN + self.payload.len());
        out.extend_from_slice(&WIRE_MAGIC);
        out.extend_from_slice(&WIRE_VERSION.to_le_bytes());
        out.push(self.tag);
        out.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parse a frame from a byte slice, rejecting trailing garbage.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(bytes);
        let frame = Self::read_header_body(&mut r)?;
        r.finish()?;
        Ok(frame)
    }

    fn read_header_body(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let magic: [u8; 2] = r.take(2)?.try_into().expect("2 bytes");
        if magic != WIRE_MAGIC {
            return Err(WireError::BadMagic(magic));
        }
        let version = u16::from_le_bytes(r.take(2)?.try_into().expect("2 bytes"));
        if version != WIRE_VERSION {
            return Err(WireError::BadVersion {
                found: version,
                expected: WIRE_VERSION,
            });
        }
        let tag = r.byte()?;
        let len = u32::from_le_bytes(r.take(4)?.try_into().expect("4 bytes"));
        if len > MAX_FRAME_LEN {
            return Err(WireError::Malformed("frame length over limit"));
        }
        let payload = r.take(len as usize)?.to_vec();
        Ok(WireFrame { tag, payload })
    }

    /// Serialize header + payload + durable trailer. The trailer repeats
    /// the total frame length and adds a CRC-32 of the frame bytes, so a
    /// reader of an append-only file can tell a *torn* record (file ends
    /// mid-record: truncate and carry on) from a *corrupted* one (bits
    /// changed under a valid-looking shape: skip and report) instead of
    /// trusting whatever parses.
    pub fn to_durable_bytes(&self) -> Vec<u8> {
        let mut out = self.to_bytes();
        let frame_len = out.len() as u32;
        out.extend_from_slice(&frame_len.to_le_bytes());
        out.extend_from_slice(&crc32(&out[..frame_len as usize]).to_le_bytes());
        out
    }

    /// Total on-disk size of this frame once trailered.
    pub fn durable_len(&self) -> usize {
        FRAME_HEADER_LEN + self.payload.len() + RECORD_TRAILER_LEN
    }

    /// Read one trailered record from the reader. Verifies that the
    /// trailer's length matches the frame actually parsed and that the
    /// CRC-32 matches the frame bytes; any payload or header bit flip
    /// surfaces as [`WireError::Checksum`] or a structural error, never as
    /// silently different data.
    pub fn read_durable(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let start = r.pos;
        let frame = Self::read_header_body(r)?;
        let frame_len = (r.pos - start) as u32;
        let frame_bytes = &r.bytes[start..r.pos];
        let trailer = r.take(RECORD_TRAILER_LEN)?;
        let stored_len = u32::from_le_bytes(trailer[..4].try_into().expect("4 bytes"));
        if stored_len != frame_len {
            return Err(WireError::Malformed("record trailer length mismatch"));
        }
        let stored_crc = u32::from_le_bytes(trailer[4..].try_into().expect("4 bytes"));
        let expected = crc32(frame_bytes);
        if stored_crc != expected {
            return Err(WireError::Checksum {
                found: stored_crc,
                expected,
            });
        }
        Ok(frame)
    }

    /// Write this frame to a stream.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(&self.to_bytes())
    }

    /// Read one frame from a stream. `Ok(None)` on clean EOF at a frame
    /// boundary; mid-frame EOF and malformed headers are errors.
    pub fn read_from(r: &mut impl Read) -> io::Result<Option<Self>> {
        let mut payload = Vec::new();
        Ok(Self::read_from_into(r, &mut payload)?.map(|tag| WireFrame { tag, payload }))
    }

    /// [`WireFrame::read_from`] into a caller-owned payload buffer,
    /// returning the frame tag. Allocation-free once the buffer's
    /// capacity covers the frame — streaming clients reuse one buffer
    /// for every response.
    pub fn read_from_into(r: &mut impl Read, payload: &mut Vec<u8>) -> io::Result<Option<u8>> {
        let mut header = [0u8; FRAME_HEADER_LEN];
        let mut filled = 0;
        while filled < header.len() {
            let n = r.read(&mut header[filled..])?;
            if n == 0 {
                if filled == 0 {
                    return Ok(None);
                }
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    WireError::Truncated,
                ));
            }
            filled += n;
        }
        if header[..2] != WIRE_MAGIC {
            return Err(WireError::BadMagic([header[0], header[1]]).into());
        }
        let version = u16::from_le_bytes([header[2], header[3]]);
        if version != WIRE_VERSION {
            return Err(WireError::BadVersion {
                found: version,
                expected: WIRE_VERSION,
            }
            .into());
        }
        let tag = header[4];
        let len = u32::from_le_bytes([header[5], header[6], header[7], header[8]]);
        if len > MAX_FRAME_LEN {
            return Err(WireError::Malformed("frame length over limit").into());
        }
        payload.clear();
        payload.resize(len as usize, 0);
        r.read_exact(payload)?;
        Ok(Some(tag))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_slice_encoding_is_byte_identical_to_vec_encoding() {
        for items in [
            vec![],
            vec![0u64],
            vec![1, 127, 128, 300, u64::MAX],
            (0..1000).collect::<Vec<u64>>(),
        ] {
            let mut from_slice = Vec::new();
            encode_u64_slice_into(&mut from_slice, &items);
            assert_eq!(from_slice, items.encode());
            assert_eq!(Vec::<u64>::decode(&from_slice).unwrap(), items);
        }
    }

    #[test]
    fn frame_encoding_into_scratch_is_byte_identical_to_to_bytes() {
        for items in [vec![], vec![1u64, 127, 128, u64::MAX]] {
            let frame = WireFrame::from_value(0x10, &items);
            let mut scratch = vec![0xAA; 3]; // dirty prefix survives untouched
            let prefix = scratch.len();
            encode_frame_into(&mut scratch, 0x10, |out| items.encode_into(out));
            assert_eq!(&scratch[prefix..], frame.to_bytes().as_slice());
            assert_eq!(&scratch[..prefix], &[0xAA; 3]);
        }
    }

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = value.encode();
        assert_eq!(T::decode(&bytes).unwrap(), value);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u64);
        roundtrip(127u64);
        roundtrip(128u64);
        roundtrip(u64::MAX);
        roundtrip(-1i64);
        roundtrip(i64::MIN);
        roundtrip(i64::MAX);
        roundtrip(0.0f64);
        roundtrip(-0.0f64);
        roundtrip(std::f64::consts::PI);
        roundtrip(true);
        roundtrip(String::from("héllo"));
        roundtrip(Some(42u64));
        roundtrip(Option::<u64>::None);
        roundtrip(vec![1u64, 2, 3]);
        roundtrip((7u64, -3i64, 0.5f64));
    }

    #[test]
    fn nan_bits_survive() {
        let bytes = f64::NAN.encode();
        assert!(f64::decode(&bytes).unwrap().is_nan());
    }

    #[test]
    fn map_roundtrips_and_rejects_duplicates() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..100 {
            m.insert(i, i * i);
        }
        let bytes = m.encode();
        assert_eq!(FxHashMap::<u64, u64>::decode(&bytes).unwrap(), m);

        let mut dup = Vec::new();
        put_varint(&mut dup, 2);
        for _ in 0..2 {
            1u64.encode_into(&mut dup);
            9u64.encode_into(&mut dup);
        }
        assert!(matches!(
            FxHashMap::<u64, u64>::decode(&dup),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn varints_are_compact() {
        assert_eq!(5u64.encode().len(), 1);
        assert_eq!(300u64.encode().len(), 2);
        assert_eq!((-2i64).encode().len(), 1);
    }

    #[test]
    fn truncation_and_trailing_are_detected() {
        let bytes = vec![1u64, 2, 3].encode();
        assert_eq!(
            Vec::<u64>::decode(&bytes[..bytes.len() - 1]),
            Err(WireError::Truncated)
        );
        let mut extra = bytes;
        extra.push(0);
        assert_eq!(Vec::<u64>::decode(&extra), Err(WireError::Trailing(1)));
    }

    #[test]
    fn corrupt_length_cannot_allocate() {
        // Claims 2^60 elements with 1 byte of data behind it.
        let mut bytes = Vec::new();
        put_varint(&mut bytes, 1u64 << 60);
        bytes.push(0);
        assert_eq!(Vec::<u64>::decode(&bytes), Err(WireError::Truncated));
    }

    #[test]
    fn frames_roundtrip_via_bytes_and_streams() {
        let frame = WireFrame::from_value(7, &vec![1u64, 500, 9]);
        let bytes = frame.to_bytes();
        assert_eq!(WireFrame::from_bytes(&bytes).unwrap(), frame);

        let mut stream = Vec::new();
        frame.write_to(&mut stream).unwrap();
        frame.write_to(&mut stream).unwrap();
        let mut cursor = &stream[..];
        assert_eq!(WireFrame::read_from(&mut cursor).unwrap().unwrap(), frame);
        assert_eq!(WireFrame::read_from(&mut cursor).unwrap().unwrap(), frame);
        assert!(WireFrame::read_from(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Canonical CRC-32/ISO-HDLC check values (same as zlib).
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn durable_records_roundtrip() {
        let frame = WireFrame::from_value(0x20, &vec![5u64, 6, 7]);
        let bytes = frame.to_durable_bytes();
        assert_eq!(bytes.len(), frame.durable_len());
        let mut r = WireReader::new(&bytes);
        assert_eq!(WireFrame::read_durable(&mut r).unwrap(), frame);
        r.finish().unwrap();
    }

    #[test]
    fn durable_records_detect_every_single_bit_flip() {
        // Exhaustive: flipping any one bit anywhere in the record — header,
        // payload, or trailer — must produce an error, never a silently
        // different frame.
        let frame = WireFrame::from_value(3, &vec![1u64, 2, 300, 40_000]);
        let good = frame.to_durable_bytes();
        for byte in 0..good.len() {
            for bit in 0..8 {
                let mut bad = good.clone();
                bad[byte] ^= 1 << bit;
                let mut r = WireReader::new(&bad);
                let outcome = WireFrame::read_durable(&mut r);
                assert!(
                    outcome.is_err(),
                    "flip of byte {byte} bit {bit} went undetected: {outcome:?}"
                );
            }
        }
    }

    #[test]
    fn durable_records_detect_torn_tails() {
        let frame = WireFrame::from_value(9, &vec![10u64; 50]);
        let good = frame.to_durable_bytes();
        // Cutting the record anywhere — even inside the trailer — reads as
        // Truncated, the signal to truncate a torn WAL tail.
        for cut in 0..good.len() {
            let mut r = WireReader::new(&good[..cut]);
            assert_eq!(
                WireFrame::read_durable(&mut r).unwrap_err(),
                WireError::Truncated,
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn frames_reject_foreign_data() {
        assert!(matches!(
            WireFrame::from_bytes(b"XX\x01\x00\x00\x00\x00\x00\x00"),
            Err(WireError::BadMagic(_))
        ));
        let mut wrong_version = WireFrame::from_value(0, &1u64).to_bytes();
        wrong_version[2] = 0xFF;
        assert!(matches!(
            WireFrame::from_bytes(&wrong_version),
            Err(WireError::BadVersion { .. })
        ));
        let mut cursor: &[u8] = b"MS";
        assert!(WireFrame::read_from(&mut cursor).is_err());
    }
}

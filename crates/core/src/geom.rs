//! Minimal 2D geometry shared by the ε-approximation and ε-kernel crates.

use crate::wire::{Wire, WireError, WireReader};

/// A point in the plane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point2 {
    /// x coordinate.
    pub x: f64,
    /// y coordinate.
    pub y: f64,
}

impl Point2 {
    /// Construct a point.
    pub const fn new(x: f64, y: f64) -> Self {
        Point2 { x, y }
    }

    /// Dot product with a direction vector.
    #[inline]
    pub fn dot(&self, dir: (f64, f64)) -> f64 {
        self.x * dir.0 + self.y * dir.1
    }

    /// Euclidean distance to another point.
    pub fn distance(&self, other: &Point2) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }
}

impl Wire for Point2 {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.x.encode_into(out);
        self.y.encode_into(out);
    }
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Point2 {
            x: f64::decode_from(r)?,
            y: f64::decode_from(r)?,
        })
    }
}

/// Axis-aligned rectangle `[x_lo, x_hi] × [y_lo, y_hi]` (closed on all
/// sides), the canonical range space of VC dimension 4 used in §5.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Left edge.
    pub x_lo: f64,
    /// Right edge.
    pub x_hi: f64,
    /// Bottom edge.
    pub y_lo: f64,
    /// Top edge.
    pub y_hi: f64,
}

impl Rect {
    /// Construct from corner coordinates; normalizes a flipped rectangle.
    pub fn new(x_lo: f64, x_hi: f64, y_lo: f64, y_hi: f64) -> Self {
        Rect {
            x_lo: x_lo.min(x_hi),
            x_hi: x_lo.max(x_hi),
            y_lo: y_lo.min(y_hi),
            y_hi: y_lo.max(y_hi),
        }
    }

    /// Closed-interval containment test.
    #[inline]
    pub fn contains(&self, p: &Point2) -> bool {
        p.x >= self.x_lo && p.x <= self.x_hi && p.y >= self.y_lo && p.y <= self.y_hi
    }

    /// The bounding box of a point set, or `None` for an empty set.
    pub fn bounding(points: &[Point2]) -> Option<Rect> {
        let first = points.first()?;
        let mut r = Rect {
            x_lo: first.x,
            x_hi: first.x,
            y_lo: first.y,
            y_hi: first.y,
        };
        for p in &points[1..] {
            r.x_lo = r.x_lo.min(p.x);
            r.x_hi = r.x_hi.max(p.x);
            r.y_lo = r.y_lo.min(p.y);
            r.y_hi = r.y_hi.max(p.y);
        }
        Some(r)
    }

    /// Width × height.
    pub fn area(&self) -> f64 {
        (self.x_hi - self.x_lo) * (self.y_hi - self.y_lo)
    }
}

impl Wire for Rect {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.x_lo.encode_into(out);
        self.x_hi.encode_into(out);
        self.y_lo.encode_into(out);
        self.y_hi.encode_into(out);
    }
    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Rect {
            x_lo: f64::decode_from(r)?,
            x_hi: f64::decode_from(r)?,
            y_lo: f64::decode_from(r)?,
            y_hi: f64::decode_from(r)?,
        })
    }
}

/// A unit direction vector at angle `theta` (radians).
#[inline]
pub fn unit_dir(theta: f64) -> (f64, f64) {
    (theta.cos(), theta.sin())
}

/// Exact directional width of a point set along `dir`:
/// `max_p ⟨p, dir⟩ − min_p ⟨p, dir⟩`. Returns 0 for fewer than 2 points.
pub fn directional_width(points: &[Point2], dir: (f64, f64)) -> f64 {
    if points.len() < 2 {
        return 0.0;
    }
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for p in points {
        let d = p.dot(dir);
        lo = lo.min(d);
        hi = hi.max(d);
    }
    hi - lo
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_normalizes_flipped_corners() {
        let r = Rect::new(5.0, 1.0, 4.0, 2.0);
        assert_eq!(r.x_lo, 1.0);
        assert_eq!(r.x_hi, 5.0);
        assert_eq!(r.y_lo, 2.0);
        assert_eq!(r.y_hi, 4.0);
    }

    #[test]
    fn contains_is_closed() {
        let r = Rect::new(0.0, 1.0, 0.0, 1.0);
        assert!(r.contains(&Point2::new(0.0, 0.0)));
        assert!(r.contains(&Point2::new(1.0, 1.0)));
        assert!(r.contains(&Point2::new(0.5, 0.5)));
        assert!(!r.contains(&Point2::new(1.0001, 0.5)));
        assert!(!r.contains(&Point2::new(0.5, -0.0001)));
    }

    #[test]
    fn bounding_box() {
        let pts = vec![
            Point2::new(1.0, 2.0),
            Point2::new(-3.0, 5.0),
            Point2::new(4.0, -1.0),
        ];
        let r = Rect::bounding(&pts).unwrap();
        assert_eq!(r, Rect::new(-3.0, 4.0, -1.0, 5.0));
        assert!(Rect::bounding(&[]).is_none());
    }

    #[test]
    fn area() {
        assert_eq!(Rect::new(0.0, 2.0, 0.0, 3.0).area(), 6.0);
        assert_eq!(Rect::new(1.0, 1.0, 0.0, 3.0).area(), 0.0);
    }

    #[test]
    fn width_of_unit_square_along_axes_and_diagonal() {
        let pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(0.0, 1.0),
            Point2::new(1.0, 1.0),
        ];
        assert!((directional_width(&pts, unit_dir(0.0)) - 1.0).abs() < 1e-12);
        assert!(
            (directional_width(&pts, unit_dir(std::f64::consts::FRAC_PI_4))
                - std::f64::consts::SQRT_2)
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn width_degenerate_sets() {
        assert_eq!(directional_width(&[], unit_dir(0.3)), 0.0);
        assert_eq!(
            directional_width(&[Point2::new(2.0, 2.0)], unit_dir(0.3)),
            0.0
        );
    }

    #[test]
    fn distance_and_dot() {
        let p = Point2::new(3.0, 4.0);
        assert_eq!(p.distance(&Point2::new(0.0, 0.0)), 5.0);
        assert_eq!(p.dot((1.0, 0.0)), 3.0);
        assert_eq!(p.dot((0.0, 1.0)), 4.0);
    }
}

//! Merge-tree drivers.
//!
//! The defining property of a mergeable summary is that its guarantee holds
//! under **every** merge order — a left-deep chain (streaming aggregation),
//! a balanced binary tree (map-reduce combiners), a random pairing (gossip /
//! work-stealing aggregation) or a shallow two-level star (scatter-gather).
//! The experiments therefore never test a single order: they sweep the
//! shapes below and assert the bound for each.

use crate::error::Result;
use crate::rng::Rng64;
use crate::summary::Mergeable;

/// Shape of the merge tree applied to a sequence of leaf summaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeTree {
    /// Left-deep chain: `((s₁ ⊕ s₂) ⊕ s₃) ⊕ …` — the worst case for
    /// summaries whose error grows with merge count.
    Chain,
    /// Balanced binary tree: pair adjacent summaries level by level —
    /// `log₂(sites)` merge depth.
    Balanced,
    /// Random binary tree: repeatedly merge two uniformly chosen summaries,
    /// seeded for reproducibility.
    Random {
        /// Seed for the pairing order.
        seed: u64,
    },
    /// Two-level star: split leaves into `fan` contiguous groups, chain
    /// within each group, then chain the group results (models a
    /// rack-then-cluster aggregation topology). `fan = 1` degenerates to
    /// [`MergeTree::Chain`].
    TwoLevel {
        /// Number of first-level groups.
        fan: usize,
    },
}

impl MergeTree {
    /// The four canonical shapes used throughout the experiments.
    pub fn canonical() -> [MergeTree; 4] {
        [
            MergeTree::Chain,
            MergeTree::Balanced,
            MergeTree::Random { seed: 0xDEC0DE },
            MergeTree::TwoLevel { fan: 8 },
        ]
    }

    /// Short human-readable label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            MergeTree::Chain => "chain",
            MergeTree::Balanced => "balanced",
            MergeTree::Random { .. } => "random",
            MergeTree::TwoLevel { .. } => "two-level",
        }
    }
}

/// Merge a non-empty vector of summaries according to `shape`.
///
/// Returns the final summary, or the first [`crate::MergeError`] encountered
/// (inputs are consumed either way — a failed merge sequence has no
/// meaningful partial result).
///
/// # Panics
///
/// Panics if `leaves` is empty: an empty merge has no identity element in
/// general (summaries carry parameters), so the caller must supply at least
/// one summary.
pub fn merge_all<S: Mergeable>(leaves: Vec<S>, shape: MergeTree) -> Result<S> {
    assert!(
        !leaves.is_empty(),
        "merge_all requires at least one summary"
    );
    match shape {
        MergeTree::Chain => merge_chain(leaves),
        MergeTree::Balanced => merge_balanced(leaves),
        MergeTree::Random { seed } => merge_random(leaves, seed),
        MergeTree::TwoLevel { fan } => merge_two_level(leaves, fan),
    }
}

fn merge_chain<S: Mergeable>(leaves: Vec<S>) -> Result<S> {
    let mut iter = leaves.into_iter();
    let mut acc = iter.next().expect("checked non-empty");
    for next in iter {
        acc = acc.merge(next)?;
    }
    Ok(acc)
}

fn merge_balanced<S: Mergeable>(mut level: Vec<S>) -> Result<S> {
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        let mut iter = level.into_iter();
        while let Some(a) = iter.next() {
            match iter.next() {
                Some(b) => next.push(a.merge(b)?),
                None => next.push(a), // odd leftover rides up a level
            }
        }
        level = next;
    }
    Ok(level.pop().expect("checked non-empty"))
}

fn merge_random<S: Mergeable>(mut pool: Vec<S>, seed: u64) -> Result<S> {
    let mut rng = Rng64::new(seed);
    while pool.len() > 1 {
        let i = rng.below_usize(pool.len());
        let a = pool.swap_remove(i);
        let j = rng.below_usize(pool.len());
        let b = pool.swap_remove(j);
        pool.push(a.merge(b)?);
    }
    Ok(pool.pop().expect("checked non-empty"))
}

fn merge_two_level<S: Mergeable>(leaves: Vec<S>, fan: usize) -> Result<S> {
    let fan = fan.max(1);
    let group_size = leaves.len().div_ceil(fan).max(1);
    let mut groups: Vec<Vec<S>> = Vec::with_capacity(fan);
    let mut current = Vec::with_capacity(group_size);
    for s in leaves {
        current.push(s);
        if current.len() == group_size {
            groups.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        groups.push(current);
    }
    let firsts: Result<Vec<S>> = groups.into_iter().map(merge_chain).collect();
    merge_chain(firsts?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::MergeError;

    /// Summary that records the exact merge expression, so tests can verify
    /// the tree structure actually built, and counts leaves.
    #[derive(Debug, Clone, PartialEq)]
    struct Trace {
        expr: String,
        leaves: usize,
        depth: usize,
    }

    impl Trace {
        fn leaf(name: &str) -> Self {
            Trace {
                expr: name.to_string(),
                leaves: 1,
                depth: 0,
            }
        }
    }

    impl Mergeable for Trace {
        fn merge(self, other: Self) -> Result<Self> {
            Ok(Trace {
                expr: format!("({} {})", self.expr, other.expr),
                leaves: self.leaves + other.leaves,
                depth: 1 + self.depth.max(other.depth),
            })
        }
    }

    fn leaves(n: usize) -> Vec<Trace> {
        (0..n).map(|i| Trace::leaf(&format!("s{i}"))).collect()
    }

    #[test]
    fn single_leaf_is_identity_for_every_shape() {
        for shape in MergeTree::canonical() {
            let out = merge_all(leaves(1), shape).unwrap();
            assert_eq!(out.expr, "s0");
        }
    }

    #[test]
    fn chain_builds_left_deep_tree() {
        let out = merge_all(leaves(4), MergeTree::Chain).unwrap();
        assert_eq!(out.expr, "(((s0 s1) s2) s3)");
        assert_eq!(out.depth, 3);
    }

    #[test]
    fn balanced_builds_logarithmic_depth() {
        let out = merge_all(leaves(8), MergeTree::Balanced).unwrap();
        assert_eq!(out.expr, "(((s0 s1) (s2 s3)) ((s4 s5) (s6 s7)))");
        assert_eq!(out.depth, 3);
    }

    #[test]
    fn balanced_handles_odd_counts() {
        let out = merge_all(leaves(5), MergeTree::Balanced).unwrap();
        assert_eq!(out.leaves, 5);
        // 5 leaves: depth must be ceil(log2(5)) = 3.
        assert_eq!(out.depth, 3);
    }

    #[test]
    fn random_is_reproducible_and_complete() {
        let a = merge_all(leaves(16), MergeTree::Random { seed: 1 }).unwrap();
        let b = merge_all(leaves(16), MergeTree::Random { seed: 1 }).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.leaves, 16);

        let c = merge_all(leaves(16), MergeTree::Random { seed: 2 }).unwrap();
        assert_eq!(c.leaves, 16);
        // With 16 leaves two seeds virtually never build the same tree.
        assert_ne!(a.expr, c.expr);
    }

    #[test]
    fn two_level_groups_then_chains() {
        let out = merge_all(leaves(6), MergeTree::TwoLevel { fan: 3 }).unwrap();
        assert_eq!(out.expr, "(((s0 s1) (s2 s3)) (s4 s5))");
        assert_eq!(out.leaves, 6);
    }

    #[test]
    fn two_level_fan_one_equals_chain() {
        let a = merge_all(leaves(5), MergeTree::TwoLevel { fan: 1 }).unwrap();
        let b = merge_all(leaves(5), MergeTree::Chain).unwrap();
        assert_eq!(a.expr, b.expr);
    }

    #[test]
    fn two_level_fan_larger_than_leaves() {
        let out = merge_all(leaves(3), MergeTree::TwoLevel { fan: 10 }).unwrap();
        assert_eq!(out.leaves, 3);
    }

    #[test]
    #[should_panic(expected = "at least one summary")]
    fn empty_input_panics() {
        let _ = merge_all(Vec::<Trace>::new(), MergeTree::Chain);
    }

    /// A summary whose merge fails on a marked element.
    #[derive(Debug)]
    struct Poison(bool);

    impl Mergeable for Poison {
        fn merge(self, other: Self) -> Result<Self> {
            if self.0 || other.0 {
                Err(MergeError::Incompatible("poisoned"))
            } else {
                Ok(Poison(false))
            }
        }
    }

    #[test]
    fn errors_propagate_from_any_level() {
        for shape in MergeTree::canonical() {
            let pool = vec![Poison(false), Poison(false), Poison(true), Poison(false)];
            let err = merge_all(pool, shape).unwrap_err();
            assert_eq!(err, MergeError::Incompatible("poisoned"));
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(MergeTree::Chain.label(), "chain");
        assert_eq!(MergeTree::Balanced.label(), "balanced");
        assert_eq!(MergeTree::Random { seed: 9 }.label(), "random");
        assert_eq!(MergeTree::TwoLevel { fan: 2 }.label(), "two-level");
    }
}

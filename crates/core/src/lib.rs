//! Framework types for *mergeable summaries*.
//!
//! This crate provides the shared vocabulary used by every summary in the
//! workspace, following the model of Agarwal, Cormode, Huang, Phillips, Wei
//! and Yi, *Mergeable summaries*, PODS 2012:
//!
//! * a summarization scheme `S(D, ε)` is **mergeable** if there is an
//!   algorithm taking `S(D₁, ε)` and `S(D₂, ε)` to `S(D₁ ⊎ D₂, ε)` — the same
//!   error parameter and the same size bound, no matter how many merges are
//!   performed or in what order;
//! * the [`Mergeable`] trait captures that contract, and [`tree`] provides
//!   drivers that exercise it over arbitrary merge-tree shapes (the paper's
//!   guarantees must hold for *all* of them, not just left-deep chains);
//! * [`oracle`] computes exact ground truth (frequencies, ranks) so tests and
//!   experiments can measure the error actually committed;
//! * [`metrics`] summarizes those errors;
//! * [`rng`] is a tiny deterministic RNG (splitmix64 / xoshiro256**) so every
//!   randomized merge in the workspace is reproducible from an explicit seed;
//! * [`hash`] is a fast non-cryptographic hasher for counter maps;
//! * [`wire`] is the compact, versioned binary codec summaries ship in
//!   (files, sockets, simulated links), and [`json`] a small encode-only
//!   JSON writer used for reports and byte-cost comparisons.
//!
//! Summaries in this workspace are **value types**: merging consumes both
//! inputs and returns the merged summary (or a typed [`MergeError`] when the
//! inputs are incompatible — e.g. built with different ε).

pub mod error;
pub mod geom;
pub mod hash;
pub mod json;
pub mod metrics;
pub mod oracle;
pub mod pool;
pub mod ring;
pub mod rng;
pub mod simd;
pub mod summary;
pub mod swap;
pub mod tree;
pub mod wire;

pub use error::{MergeError, Result, ServiceError};
pub use geom::{directional_width, unit_dir, Point2, Rect};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use json::{Json, ToJson};
pub use metrics::{percentile, BoundCheck, ErrorStats};
pub use oracle::{FrequencyOracle, RankOracle};
pub use pool::BufferPool;
pub use ring::{PushError, Ring};
pub use rng::Rng64;
pub use summary::{ItemSummary, Mergeable, Summary};
pub use swap::SwapCell;
pub use tree::{merge_all, MergeTree};
pub use wire::{crc32, Wire, WireError, WireFrame, WireReader};
